package tcpsim

import (
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Connection states (RFC 793 §3.2, minus LISTEN which lives in Listener
// and TIME_WAIT which is elided — see the package comment).
type state uint8

const (
	stateSynSent state = iota
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateLastAck
	stateClosing
	stateClosed
)

func (st state) String() string {
	names := [...]string{"SYN-SENT", "SYN-RCVD", "ESTABLISHED", "FIN-WAIT-1",
		"FIN-WAIT-2", "CLOSE-WAIT", "LAST-ACK", "CLOSING", "CLOSED"}
	if int(st) < len(names) {
		return names[st]
	}
	return "?"
}

// ecnCodepoint converts the internal marker to an ecn.Codepoint.
func ecnCodepoint(cp uint8) ecn.Codepoint { return ecn.Codepoint(cp) }

const (
	cpNotECT = uint8(ecn.NotECT)
	cpECT0   = uint8(ecn.ECT0)
)

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *Stack
	key   connKey
	st    state

	// Sequence space.
	iss    uint32 // initial send sequence
	sndNxt uint32 // next sequence to send
	sndUna uint32 // oldest unacknowledged
	rcvNxt uint32 // next expected from peer

	// ECN.
	requestECN    bool // client side: ask for ECN in the SYN
	markCE        bool // client side: transmit data as CE (usability probe)
	ecnNegotiated bool
	// echoCE: receiver saw CE and must set ECE on ACKs until peer CWRs.
	echoCE bool
	// cwrPending: sender must set CWR on the next new data segment
	// because the peer echoed ECE.
	cwrPending bool

	// Congestion control: a byte-denominated congestion window limits
	// data in flight. It halves when the peer echoes congestion (ECE)
	// and on retransmission timeout, and grows additively on forward
	// progress — enough of RFC 5681/3168 for the endpoints to *react*
	// to CE, which is what makes the HTTP probes RFC 3168 endpoints
	// rather than mere negotiators.
	cwnd    int
	sendBuf []byte // stream bytes accepted but not yet segmented
	// recover marks sndNxt at the last window reduction: at most one
	// reduction per window of data (RFC 3168 §6.1.2).
	recover uint32

	// Retransmission: segments in flight, oldest first.
	rtxQueue []sentSegment
	rtxTimer netsim.Timer
	rto      time.Duration

	// rtoFn and synFn are the timer callbacks, bound once at
	// construction so re-arming a timer allocates no closure. hdrScratch
	// backs header(): the header is marshalled into the wire buffer
	// before the next segment is built, so one scratch per connection
	// suffices.
	rtoFn      func()
	synFn      func()
	hdrScratch packet.TCPHeader

	// SYN handling.
	synRetriesLeft int
	synBackoff     time.Duration

	// stalls counts consecutive RTO expirations without forward
	// progress; the connection aborts after too many.
	stalls int

	// Pending application writes queued before ESTABLISHED.
	pendingWrites [][]byte
	// FIN requested by the application (sent once queue drains).
	closeRequested bool
	finSent        bool

	listener *Listener
	dialDone func(*Conn, error)

	// Application callbacks.
	onData  func([]byte)
	onClose func(error)

	// Telemetry.
	Retransmits    uint64
	CEMarksSeen    uint64
	ECESeen        uint64
	CWRSent        uint64
	CwndReductions uint64
	BytesReceived  uint64
}

// sentSegment is a queued in-flight segment for retransmission.
type sentSegment struct {
	seq     uint32
	flags   uint8
	payload []byte
}

// initialCwnd is the initial congestion window (RFC 6928's 10 segments):
// large enough that the study's small HTTP exchanges never queue behind
// it, so uncongested campaigns behave exactly as before this window
// existed.
const initialCwnd = 10 * MSS

// minCwnd is the reduction floor (two segments, RFC 5681).
const minCwnd = 2 * MSS

func newConn(s *Stack, key connKey, st state) *Conn {
	iss := s.host.Sim().RNG().Uint32()
	c := &Conn{
		stack:      s,
		key:        key,
		st:         st,
		iss:        iss,
		sndNxt:     iss,
		sndUna:     iss,
		cwnd:       initialCwnd,
		recover:    iss,
		rto:        time.Second,
		synBackoff: time.Second,
	}
	c.rtoFn = c.onRTO
	c.synFn = c.onSYNTimer
	return c
}

// --- Public API ---------------------------------------------------------

// ECNNegotiated reports whether the handshake agreed to use ECN.
func (c *Conn) ECNNegotiated() bool { return c.ecnNegotiated }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

// State returns a human-readable connection state (for tests/logs).
func (c *Conn) State() string { return c.st.String() }

// LocalPort returns the local port of the connection.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() packet.Addr { return c.key.remote }

// OnData registers the receive callback (in-order stream bytes).
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnClose registers a callback invoked once when the connection ends;
// err is nil for a graceful FIN exchange, ErrReset for a RST.
func (c *Conn) OnClose(fn func(error)) { c.onClose = fn }

// Write queues stream data. Data written before the handshake completes
// is sent upon ESTABLISHED.
func (c *Conn) Write(data []byte) {
	if c.st == stateClosed || c.closeRequested {
		return
	}
	cp := append([]byte(nil), data...)
	if c.st != stateEstablished && c.st != stateCloseWait {
		c.pendingWrites = append(c.pendingWrites, cp)
		return
	}
	c.sendData(cp)
}

// Close initiates a graceful shutdown (FIN after pending data).
func (c *Conn) Close() {
	if c.st == stateClosed || c.closeRequested {
		return
	}
	c.closeRequested = true
	c.maybeSendFIN()
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.st == stateClosed {
		return
	}
	hdr := c.header(packet.TCPRst | packet.TCPAck)
	c.stack.send(c, hdr, cpNotECT, nil)
	c.teardown(ErrReset)
}

// --- Segment construction ----------------------------------------------

// header builds a TCP header for the current connection state into the
// connection's scratch (valid until the next header call; the stack
// marshals it into wire bytes immediately).
func (c *Conn) header(flags uint8) *packet.TCPHeader {
	c.hdrScratch = packet.TCPHeader{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  65535,
	}
	return &c.hdrScratch
}

// dataECN picks the IP codepoint for a data-bearing segment.
func (c *Conn) dataECN() uint8 {
	switch {
	case c.ecnNegotiated && c.markCE:
		return uint8(ecn.CE)
	case c.ecnNegotiated:
		return cpECT0
	}
	return cpNotECT
}

// brokenECE reports whether this endpoint ignores CE marks (server side
// only, inherited from its listener).
func (c *Conn) brokenECE() bool {
	return c.listener != nil && c.listener.BrokenECE
}

// mssOption is the MSS option every SYN carries, encoded once. Marshal
// copies option bytes into the segment, so sharing the slice is safe.
var mssOption = packet.MSSOption(MSS)

func (c *Conn) sendSYN() {
	flags := uint8(packet.TCPSyn)
	if c.requestECN {
		// ECN-setup SYN: SYN|ECE|CWR, sent not-ECT (RFC 3168 §6.1.1 —
		// which is why the paper could not compare ECT vs not-ECT SYNs).
		flags |= packet.TCPEce | packet.TCPCwr
	}
	hdr := c.header(flags)
	hdr.Ack = 0
	hdr.Options = mssOption
	c.stack.send(c, hdr, cpNotECT, nil)
	c.armSYNTimer()
}

func (c *Conn) sendSYNACK() {
	flags := uint8(packet.TCPSyn | packet.TCPAck)
	if c.ecnNegotiated {
		flags |= packet.TCPEce // ECN-setup SYN-ACK: ECE without CWR
	}
	hdr := c.header(flags)
	hdr.Options = mssOption
	c.stack.send(c, hdr, cpNotECT, nil)
	c.armSYNTimer()
}

// armSYNTimer retransmits handshake segments with exponential backoff.
func (c *Conn) armSYNTimer() {
	c.stopTimer()
	c.rtxTimer = c.stack.after(c.synBackoff, c.synFn)
}

// onSYNTimer is the handshake retransmission callback.
func (c *Conn) onSYNTimer() {
	if c.st != stateSynSent && c.st != stateSynRcvd {
		return
	}
	if c.synRetriesLeft <= 0 {
		c.teardown(ErrTimeout)
		return
	}
	c.synRetriesLeft--
	c.synBackoff *= 2
	c.Retransmits++
	if c.st == stateSynSent {
		c.sendSYN()
	} else {
		c.sendSYNACK()
	}
}

// sendData accepts application bytes into the send buffer and pumps as
// much as the congestion window allows.
func (c *Conn) sendData(data []byte) {
	c.sendBuf = append(c.sendBuf, data...)
	c.pump()
}

// inFlight is the unacknowledged byte count.
func (c *Conn) inFlight() int { return int(c.sndNxt - c.sndUna) }

// pump segments and transmits buffered bytes up to the congestion
// window. At least one segment may always be in flight, so a reduced
// window can stall but never deadlock the stream.
func (c *Conn) pump() {
	sentAny := false
	for len(c.sendBuf) > 0 {
		n := len(c.sendBuf)
		if n > MSS {
			n = MSS
		}
		if fl := c.inFlight(); fl > 0 && fl+n > c.cwnd {
			break // window full; ACKs re-open it
		}
		chunk := c.sendBuf[:n]
		c.sendBuf = c.sendBuf[n:]

		flags := uint8(packet.TCPAck | packet.TCPPsh)
		if c.cwrPending {
			flags |= packet.TCPCwr
			c.cwrPending = false
			c.CWRSent++
		}
		if c.echoCE {
			flags |= packet.TCPEce
		}
		hdr := c.header(flags)
		c.stack.send(c, hdr, c.dataECN(), chunk)
		c.rtxQueue = append(c.rtxQueue, sentSegment{seq: c.sndNxt, flags: flags, payload: chunk})
		c.sndNxt += uint32(len(chunk))
		sentAny = true
	}
	if sentAny {
		c.armRTO()
	}
}

// reduceWindow is the RFC 3168 congestion response to an ECE echo (and
// the RTO response): halve the window, at most once per window of data.
func (c *Conn) reduceWindow() {
	if !seqLEQ(c.recover, c.sndUna) {
		return // already reduced within this window of data
	}
	c.cwnd /= 2
	if c.cwnd < minCwnd {
		c.cwnd = minCwnd
	}
	c.recover = c.sndNxt
	c.CwndReductions++
}

// maybeSendFIN emits the FIN once all data is acknowledged-or-queued.
func (c *Conn) maybeSendFIN() {
	if c.finSent || !c.closeRequested || len(c.sendBuf) > 0 {
		return
	}
	switch c.st {
	case stateEstablished, stateCloseWait:
	default:
		return
	}
	flags := uint8(packet.TCPFin | packet.TCPAck)
	hdr := c.header(flags)
	c.stack.send(c, hdr, cpNotECT, nil)
	c.rtxQueue = append(c.rtxQueue, sentSegment{seq: c.sndNxt, flags: flags})
	c.sndNxt++ // FIN consumes a sequence number
	c.finSent = true
	if c.st == stateEstablished {
		c.st = stateFinWait1
	} else {
		c.st = stateLastAck
	}
	c.armRTO()
}

// sendACK emits a bare acknowledgement, echoing ECE while CE stands.
func (c *Conn) sendACK() {
	flags := uint8(packet.TCPAck)
	if c.echoCE {
		flags |= packet.TCPEce
	}
	c.stack.send(c, c.header(flags), cpNotECT, nil)
}

// --- Retransmission -----------------------------------------------------

func (c *Conn) armRTO() {
	if len(c.rtxQueue) == 0 {
		c.stopTimer()
		return
	}
	c.stopTimer()
	c.rtxTimer = c.stack.after(c.rto, c.rtoFn)
}

func (c *Conn) onRTO() {
	if c.st == stateClosed || len(c.rtxQueue) == 0 {
		return
	}
	if c.stalls >= 8 {
		c.teardown(ErrTimeout)
		return
	}
	c.stalls++
	// Timeout is a congestion signal too (the legacy one).
	c.reduceWindow()
	// Go-back-N: resend everything outstanding. RFC 3168 §6.1.5:
	// retransmitted packets must not be ECT-marked.
	for _, seg := range c.rtxQueue {
		c.Retransmits++
		hdr := c.header(seg.flags)
		hdr.Seq = seg.seq
		c.stack.send(c, hdr, cpNotECT, seg.payload)
	}
	c.rto *= 2
	c.armRTO()
}

func (c *Conn) stopTimer() {
	c.rtxTimer.Stop()
	c.rtxTimer = netsim.Timer{}
}

// --- Segment processing -------------------------------------------------

// seqLEQ compares sequence numbers with wraparound.
func seqLEQ(a, b uint32) bool { return int32(b-a) >= 0 }
func seqLT(a, b uint32) bool  { return int32(b-a) > 0 }

// handleSegment is the per-connection receive path.
func (c *Conn) handleSegment(ip packet.IPv4Header, hdr packet.TCPHeader, payload []byte) {
	if c.st == stateClosed {
		return
	}

	// CE on an ECN connection: note it and echo ECE until CWR arrives.
	if c.ecnNegotiated && ip.ECN() == ecn.CE {
		c.CEMarksSeen++
		if !c.brokenECE() {
			c.echoCE = true
		}
	}
	if hdr.Flags&packet.TCPCwr != 0 && hdr.Flags&packet.TCPSyn == 0 {
		c.echoCE = false // peer reduced its window; stop echoing
	}
	// Peer echoed congestion: react by flagging CWR on the next new data
	// segment (the congestion-response handshake the RTP/TCP ECN
	// usability tests look for). The SYN-ACK's ECE is negotiation, not a
	// congestion echo, hence the SYN exclusion.
	if c.ecnNegotiated && hdr.Flags&packet.TCPEce != 0 && hdr.Flags&packet.TCPSyn == 0 {
		c.ECESeen++
		c.cwrPending = true
		c.reduceWindow()
	}

	if hdr.Flags&packet.TCPRst != 0 {
		// Acceptable RST: in SYN-SENT it must ACK our SYN; otherwise it
		// must fall in the receive window (we check exact next-seq).
		if c.st == stateSynSent {
			if hdr.Flags&packet.TCPAck != 0 && hdr.Ack == c.sndNxt+1 {
				c.teardown(ErrRefused)
			}
			return
		}
		if hdr.Seq == c.rcvNxt || hdr.Flags&packet.TCPAck != 0 {
			c.teardown(ErrReset)
		}
		return
	}

	switch c.st {
	case stateSynSent:
		if hdr.Flags&packet.TCPSyn == 0 || hdr.Flags&packet.TCPAck == 0 {
			return
		}
		if hdr.Ack != c.iss+1 {
			return // not acknowledging our SYN
		}
		c.sndNxt = c.iss + 1
		c.sndUna = c.sndNxt
		c.rcvNxt = hdr.Seq + 1
		c.ecnNegotiated = c.requestECN && hdr.IsECNSetupSYNACK()
		c.st = stateEstablished
		c.stopTimer()
		c.sendACK()
		c.flushPending()
		if c.dialDone != nil {
			done := c.dialDone
			c.dialDone = nil
			done(c, nil)
		}
		return

	case stateSynRcvd:
		if hdr.Flags&packet.TCPSyn != 0 && hdr.Flags&packet.TCPAck == 0 {
			// Duplicate SYN: re-answer.
			c.sendSYNACK()
			return
		}
		if hdr.Flags&packet.TCPAck != 0 && hdr.Ack == c.iss+1 {
			c.sndNxt = c.iss + 1
			c.sndUna = c.sndNxt
			c.st = stateEstablished
			c.stopTimer()
			if c.listener != nil {
				c.listener.Accepted++
				if c.listener.accept != nil {
					c.listener.accept(c)
				}
			}
			c.flushPending()
			// Fall through: the handshake ACK may carry data.
		} else {
			return
		}
	}

	// ACK processing for data/FIN states.
	if hdr.Flags&packet.TCPAck != 0 {
		c.processACK(hdr.Ack)
	}

	// In-order payload delivery; out-of-order segments are dropped and
	// re-ACKed (retransmission fills the gap).
	if len(payload) > 0 {
		if hdr.Seq == c.rcvNxt {
			c.rcvNxt += uint32(len(payload))
			c.BytesReceived += uint64(len(payload))
			if c.onData != nil {
				c.onData(payload)
			}
			if c.st == stateClosed {
				return // callback aborted the connection
			}
		}
		c.sendACK()
	}

	// FIN processing.
	if hdr.Flags&packet.TCPFin != 0 && hdr.Seq == c.rcvNxt {
		c.rcvNxt++
		c.sendACK()
		switch c.st {
		case stateEstablished:
			c.st = stateCloseWait
			// Auto-close: this model's applications (probe-style HTTP
			// exchanges) always close once the peer does, so the stack
			// answers the FIN with its own rather than waiting for an
			// explicit Close that request/response code never issues.
			c.closeRequested = true
			c.maybeSendFIN()
		case stateFinWait1:
			c.st = stateClosing
		case stateFinWait2:
			c.teardown(nil)
		}
	}
}

// processACK advances the send window and drives state transitions that
// depend on our FIN being acknowledged.
func (c *Conn) processACK(ack uint32) {
	if hdrAckAdvances := seqLT(c.sndUna, ack) && seqLEQ(ack, c.sndNxt); !hdrAckAdvances {
		return
	}
	acked := int(ack - c.sndUna)
	c.sndUna = ack
	c.stalls = 0
	c.rto = time.Second // forward progress: reset backoff
	// Congestion avoidance: roughly one MSS per window of acknowledged
	// data, capped so a long-idle window cannot grow without bound.
	if c.cwnd < 64*MSS {
		c.cwnd += MSS * acked / c.cwnd
	}
	// Drop fully acknowledged segments from the queue.
	for len(c.rtxQueue) > 0 {
		seg := c.rtxQueue[0]
		segEnd := seg.seq + uint32(len(seg.payload))
		if seg.flags&(packet.TCPSyn|packet.TCPFin) != 0 {
			segEnd++
		}
		if seqLEQ(segEnd, ack) {
			c.rtxQueue = c.rtxQueue[1:]
		} else {
			break
		}
	}
	if len(c.rtxQueue) == 0 {
		c.stopTimer()
	} else {
		c.armRTO()
	}

	if c.finSent && ack == c.sndNxt {
		switch c.st {
		case stateFinWait1:
			c.st = stateFinWait2
		case stateClosing, stateLastAck:
			c.teardown(nil)
		}
	}
	if c.st != stateClosed {
		c.pump() // the advanced window may admit buffered data
	}
	c.maybeSendFIN()
}

// flushPending sends writes queued during the handshake.
func (c *Conn) flushPending() {
	for _, w := range c.pendingWrites {
		c.sendData(w)
	}
	c.pendingWrites = nil
	c.maybeSendFIN()
}

// teardown finalises the connection and notifies the application.
func (c *Conn) teardown(err error) {
	if c.st == stateClosed {
		return
	}
	c.st = stateClosed
	c.stopTimer()
	c.stack.drop(c)
	if c.dialDone != nil {
		done := c.dialDone
		c.dialDone = nil
		if err == nil {
			err = ErrClosed
		}
		done(nil, err)
		return
	}
	if c.onClose != nil {
		fn := c.onClose
		c.onClose = nil
		fn(err)
	}
}
