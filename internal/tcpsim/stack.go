// Package tcpsim implements a compact TCP for the simulated network:
// three-way handshake with RFC 3168 ECN negotiation, reliable in-order
// byte streams with retransmission, graceful FIN teardown and RST
// handling.
//
// It exists because the study's TCP measurement depends on genuine
// handshake semantics: an "ECN-setup SYN" (SYN with ECE|CWR) answered by
// an "ECN-setup SYN-ACK" (SYN|ACK with ECE, CWR clear) constitutes
// successful negotiation, a plain SYN-ACK is a refusal, and a RST is the
// signature of a host not running the service. All of that, plus the
// ECT(0) marking of data segments on negotiated connections, happens on
// real TCP headers serialized by the packet package.
//
// Connections carry a small congestion controller so the endpoints are
// genuine RFC 3168 reactors, not mere negotiators: a byte-denominated
// congestion window limits data in flight, halves when the peer echoes
// congestion (ECE) or an RTO fires — at most once per window of data —
// and grows additively on forward progress. The initial window (10
// segments, RFC 6928) exceeds the study's HTTP exchanges, so the window
// only binds when the congestion substrate actually marks CE.
//
// Deliberate simplifications, irrelevant to reachability measurement and
// documented here for honesty: a single retransmission timer per
// connection (go-back-N), no out-of-order reassembly (later segments are
// dropped and recovered by retransmission), no receive-window flow
// control, and no TIME_WAIT (connections free on close). Retransmitted
// segments are sent not-ECT, following RFC 3168 §6.1.5 as implemented by
// production stacks.
package tcpsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// Errors surfaced by Dial and connection teardown.
var (
	ErrTimeout = errors.New("tcpsim: connection timed out")
	ErrRefused = errors.New("tcpsim: connection refused")
	ErrReset   = errors.New("tcpsim: connection reset by peer")
	ErrClosed  = errors.New("tcpsim: connection closed")
)

// MSS is the maximum segment size used for data transfer.
const MSS = 1460

// connKey identifies a connection from the local stack's perspective.
type connKey struct {
	remote     packet.Addr
	remotePort uint16
	localPort  uint16
}

// Stack is the per-host TCP layer. Create one per simulated host that
// needs TCP; it registers itself as the host's protocol-6 handler.
type Stack struct {
	host  *netsim.Host
	conns map[connKey]*Conn
	// listeners by local port.
	listeners map[uint16]*Listener
	ephemeral uint16

	// TTL for outgoing segments (64 unless overridden).
	TTL uint8

	// Counters for tests and reports.
	SegmentsIn  uint64
	SegmentsOut uint64
	RSTsSent    uint64
}

// NewStack attaches a TCP stack to a host.
func NewStack(h *netsim.Host) *Stack {
	s := &Stack{
		host:      h,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		TTL:       64,
	}
	h.RegisterProto(packet.ProtoTCP, s.receive)
	return s
}

// Host returns the underlying simulated host.
func (s *Stack) Host() *netsim.Host { return s.host }

// Listener accepts inbound connections on a port.
type Listener struct {
	stack *Stack
	port  uint16
	// ECN controls whether ECN-setup SYNs are answered with an
	// ECN-setup SYN-ACK (the server-side willingness the paper measures).
	ECN bool
	// BrokenECE models hosts that negotiate ECN but never echo ECE for
	// CE-marked segments — the ~10% "negotiate but unusable" population
	// Kühlewind et al. measured. Connections accepted by such a
	// listener ignore CE marks.
	BrokenECE bool
	// accept is invoked for each connection that completes the
	// handshake.
	accept func(*Conn)

	// Accepted counts completed handshakes.
	Accepted uint64
}

// Listen binds a port. accept runs when a connection reaches
// ESTABLISHED.
func (s *Stack) Listen(port uint16, ecnCapable bool, accept func(*Conn)) (*Listener, error) {
	if _, taken := s.listeners[port]; taken {
		return nil, fmt.Errorf("tcpsim: port %d already listening", port)
	}
	l := &Listener{stack: s, port: port, ECN: ecnCapable, accept: accept}
	s.listeners[port] = l
	return l, nil
}

// Close stops accepting new connections.
func (l *Listener) Close() { delete(l.stack.listeners, l.port) }

// DialConfig controls an active open.
type DialConfig struct {
	// RequestECN sends an ECN-setup SYN, asking the server to negotiate
	// ECN for the connection.
	RequestECN bool
	// MarkCE transmits this side's data segments with the CE codepoint
	// instead of ECT(0) on negotiated connections — the crafted-probe
	// technique Kühlewind et al. used to test whether a server that
	// negotiates ECN actually echoes congestion (ECE). Requires
	// RequestECN.
	MarkCE bool
	// SYNRetries is the number of SYN retransmissions before giving up,
	// with 1s, 2s, 4s, … exponential backoff. The default of 6 matches
	// production stacks (Linux tcp_syn_retries), which is what lets TCP
	// "conceal the impact of packet loss" on lossy access links, as the
	// paper observes in §4.3. Virtual time makes the long worst case
	// (~127s per dial to a dead host) free.
	SYNRetries int
}

// Dial opens a connection to dst:port, invoking done exactly once with
// an established connection or an error (ErrRefused on RST, ErrTimeout
// when SYN retries are exhausted).
func (s *Stack) Dial(dst packet.Addr, port uint16, cfg DialConfig, done func(*Conn, error)) {
	if cfg.SYNRetries == 0 {
		cfg.SYNRetries = 6
	}
	key := connKey{remote: dst, remotePort: port, localPort: s.nextEphemeral()}
	c := newConn(s, key, stateSynSent)
	c.dialDone = done
	c.requestECN = cfg.RequestECN
	c.markCE = cfg.MarkCE && cfg.RequestECN
	c.synRetriesLeft = cfg.SYNRetries
	s.conns[key] = c
	c.sendSYN()
}

// nextEphemeral allocates a client port.
func (s *Stack) nextEphemeral() uint16 {
	for {
		s.ephemeral++
		if s.ephemeral < 49152 {
			s.ephemeral = 49152
		}
		key := false
		for k := range s.conns {
			if k.localPort == s.ephemeral {
				key = true
				break
			}
		}
		if _, listening := s.listeners[s.ephemeral]; !listening && !key {
			return s.ephemeral
		}
	}
}

// receive is the host's protocol-6 handler.
func (s *Stack) receive(h *netsim.Host, ip packet.IPv4Header, segment []byte) {
	hdr, payload, err := packet.ParseTCP(segment, ip.Src, ip.Dst)
	if err != nil {
		return
	}
	s.SegmentsIn++
	key := connKey{remote: ip.Src, remotePort: hdr.SrcPort, localPort: hdr.DstPort}
	if c, ok := s.conns[key]; ok {
		c.handleSegment(ip, hdr, payload)
		return
	}
	// New connection? Only a pure SYN to a listening port qualifies.
	if hdr.Flags&packet.TCPSyn != 0 && hdr.Flags&packet.TCPAck == 0 {
		if l, ok := s.listeners[hdr.DstPort]; ok {
			c := newConn(s, key, stateSynRcvd)
			c.listener = l
			// RFC 3168: negotiate only if the client sent an ECN-setup
			// SYN and this listener is willing.
			c.ecnNegotiated = l.ECN && hdr.IsECNSetupSYN()
			c.rcvNxt = hdr.Seq + 1
			s.conns[key] = c
			c.sendSYNACK()
			return
		}
	}
	// No matching connection or listener: refuse with RST, which is how
	// pool hosts without a web server answer HTTP probes.
	if hdr.Flags&packet.TCPRst == 0 {
		s.sendRST(ip.Src, hdr)
	}
}

// sendRST answers an unexpected segment per RFC 793 reset generation.
func (s *Stack) sendRST(dst packet.Addr, in packet.TCPHeader) {
	rst := &packet.TCPHeader{
		SrcPort: in.DstPort,
		DstPort: in.SrcPort,
		Flags:   packet.TCPRst | packet.TCPAck,
		Ack:     in.Seq + 1,
	}
	if in.Flags&packet.TCPAck != 0 {
		rst.Flags = packet.TCPRst
		rst.Seq = in.Ack
		rst.Ack = 0
	}
	b, err := packet.BuildTCPBuf(s.host.Addr(), dst, rst, s.TTL, 0 /* not-ECT */, s.host.NextIPID(), nil)
	if err != nil {
		return
	}
	s.RSTsSent++
	s.SegmentsOut++
	s.host.SendBuf(b)
}

// send transmits a segment for a connection with the given ECN
// codepoint. Segments are serialized into pooled wire buffers, so the
// per-segment path allocates nothing in steady state.
func (s *Stack) send(c *Conn, hdr *packet.TCPHeader, cp uint8, payload []byte) {
	b, err := packet.BuildTCPBuf(s.host.Addr(), c.key.remote, hdr, s.TTL,
		ecnCodepoint(cp), s.host.NextIPID(), payload)
	if err != nil {
		return
	}
	s.SegmentsOut++
	s.host.SendBuf(b)
}

// drop removes a connection from the demux table.
func (s *Stack) drop(c *Conn) { delete(s.conns, c.key) }

// after schedules on the host's simulator.
func (s *Stack) after(d time.Duration, fn func()) netsim.Timer {
	return s.host.Sim().After(d, fn)
}
