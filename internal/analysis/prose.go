package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Prose captures the Section 4.1 narrative statistics that accompany
// Figure 2 in the paper but appear only in its text: overall not-ECT
// reachability, the drop between collection batches (pool churn), and
// the per-vantage spread that singles out the congested home access
// link and the noisy wireless network.
type Prose struct {
	// AvgUDPReachable across all traces (paper: 2253 of 2500).
	AvgUDPReachable float64
	// Batch1/Batch2 average not-ECT reachability ("the early traces …
	// show higher reachability than the later traces").
	Batch1Avg float64
	Batch2Avg float64
	// PerVantage rows, in first-seen order.
	PerVantage []ProseVantage
}

// ProseVantage is one location's reachability summary.
type ProseVantage struct {
	Vantage string
	Traces  int
	// Mean and standard deviation of per-trace not-ECT-reachable counts.
	Mean, StdDev float64
}

// ComputeProse reduces the dataset to the §4.1 narrative numbers.
func ComputeProse(d *dataset.Dataset) Prose {
	var p Prose
	var all, b1, b2 []float64
	order := []string{}
	perV := map[string][]float64{}
	for _, t := range d.Traces {
		udp, _, _, _ := t.CountReachable()
		v := float64(udp)
		all = append(all, v)
		switch t.Batch {
		case 1:
			b1 = append(b1, v)
		case 2:
			b2 = append(b2, v)
		}
		if _, ok := perV[t.Vantage]; !ok {
			order = append(order, t.Vantage)
		}
		perV[t.Vantage] = append(perV[t.Vantage], v)
	}
	p.AvgUDPReachable = stats.Mean(all)
	p.Batch1Avg = stats.Mean(b1)
	p.Batch2Avg = stats.Mean(b2)
	for _, v := range order {
		xs := perV[v]
		p.PerVantage = append(p.PerVantage, ProseVantage{
			Vantage: v,
			Traces:  len(xs),
			Mean:    stats.Mean(xs),
			StdDev:  stats.StdDev(xs),
		})
	}
	return p
}

// WorstVantage returns the location with the lowest mean reachability
// (the paper: "we note poor reachability from McQuistin's home").
func (p Prose) WorstVantage() (ProseVantage, bool) {
	if len(p.PerVantage) == 0 {
		return ProseVantage{}, false
	}
	worst := p.PerVantage[0]
	for _, v := range p.PerVantage[1:] {
		if v.Mean < worst.Mean {
			worst = v
		}
	}
	return worst, true
}

// NoisiestVantage returns the location with the highest per-trace
// standard deviation ("more variation in the wireless traces").
func (p Prose) NoisiestVantage() (ProseVantage, bool) {
	if len(p.PerVantage) == 0 {
		return ProseVantage{}, false
	}
	noisiest := p.PerVantage[0]
	for _, v := range p.PerVantage[1:] {
		if v.StdDev > noisiest.StdDev {
			noisiest = v
		}
	}
	return noisiest, true
}

// RenderProse prints the narrative summary.
func RenderProse(p Prose) string {
	var b strings.Builder
	b.WriteString("Section 4.1 prose statistics\n")
	b.WriteString(fmt.Sprintf("avg servers reachable via not-ECT UDP: %.0f\n", p.AvgUDPReachable))
	b.WriteString(fmt.Sprintf("batch 1 (early) avg %.0f  vs  batch 2 (late) avg %.0f — pool churn\n",
		p.Batch1Avg, p.Batch2Avg))

	rows := append([]ProseVantage(nil), p.PerVantage...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Vantage < rows[j].Vantage })
	for _, v := range rows {
		b.WriteString(fmt.Sprintf("%-22s traces %-3d mean %7.1f  σ %6.1f\n",
			v.Vantage, v.Traces, v.Mean, v.StdDev))
	}
	if worst, ok := p.WorstVantage(); ok {
		b.WriteString(fmt.Sprintf("poorest reachability: %s (%.0f)\n", worst.Vantage, worst.Mean))
	}
	if noisiest, ok := p.NoisiestVantage(); ok {
		b.WriteString(fmt.Sprintf("most variable: %s (σ %.1f)\n", noisiest.Vantage, noisiest.StdDev))
	}
	return b.String()
}
