package analysis

import (
	"strings"
	"testing"
)

func TestComputeCEMarkReport(t *testing.T) {
	samples := []CEMarkSample{
		{
			Vantage: "Perkins home",
			InECT:   80, InCE: 20,
			QueueECT: 200, QueueCEMarked: 50,
			QueueNotECTDropped: 7, QueueTailDropped: 3,
			QueueOffered: 400, QueueSumBacklog: 2000,
			Utilization: 0.9,
		},
		{
			Vantage: "EC2 Tokyo",
			InECT:   100, InCE: 0,
			QueueECT: 100, QueueCEMarked: 0,
			Utilization: 0.9,
		},
	}
	rep := ComputeCEMarkReport(samples)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	r0 := rep.Rows[0]
	if r0.ObservedCERatio != 0.2 {
		t.Errorf("observed ratio = %v, want 0.2", r0.ObservedCERatio)
	}
	if r0.QueueMarkRatio != 0.25 {
		t.Errorf("queue ratio = %v, want 0.25", r0.QueueMarkRatio)
	}
	if r0.AvgBacklog != 5 {
		t.Errorf("avg backlog = %v, want 5", r0.AvgBacklog)
	}
	if rep.Utilization != 0.9 {
		t.Errorf("utilization = %v", rep.Utilization)
	}
	// Aggregate: 20 CE of 200 ECT-capable arrivals; 50 of 300 admitted.
	if rep.ObservedCERatio != 0.1 {
		t.Errorf("aggregate observed = %v, want 0.1", rep.ObservedCERatio)
	}
	if got, want := rep.QueueMarkRatio, 50.0/300.0; got != want {
		t.Errorf("aggregate queue ratio = %v, want %v", got, want)
	}
}

func TestComputeCEMarkReportEmpty(t *testing.T) {
	rep := ComputeCEMarkReport(nil)
	if len(rep.Rows) != 0 || rep.ObservedCERatio != 0 || rep.QueueMarkRatio != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	if out := RenderCEMarkReport(rep); !strings.Contains(out, "CE-mark report") {
		t.Fatalf("render lacks header: %q", out)
	}
}

func TestRenderCEMarkReport(t *testing.T) {
	rep := ComputeCEMarkReport([]CEMarkSample{{
		Vantage: "McQuistin home", InECT: 75, InCE: 25,
		QueueECT: 100, QueueCEMarked: 30, Utilization: 1.2,
	}})
	out := RenderCEMarkReport(rep)
	for _, want := range []string{"McQuistin home", "25.00%", "30.00%", "1.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}
