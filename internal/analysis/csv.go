package analysis

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
)

// CSV emitters: every figure and table can be exported as CSV for
// external plotting (the paper's figures are bar/scatter plots that a
// spreadsheet or gnuplot reproduces directly from these rows).

// WriteTable1CSV emits region,count rows.
func WriteTable1CSV(w io.Writer, t Table1) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"region", "servers"}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write([]string{string(r.Region), strconv.Itoa(r.Count)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure2CSV emits one row per trace: vantage, index, batch, pct.
func WriteFigure2CSV(w io.Writer, f Figure2) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vantage", "trace", "batch", "pct"}); err != nil {
		return err
	}
	for _, p := range f.Points {
		err := cw.Write([]string{
			p.Vantage,
			strconv.Itoa(p.Index),
			strconv.Itoa(p.Batch),
			strconv.FormatFloat(p.Pct, 'f', 4, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure3CSV emits one row per (vantage, server): the differential
// fraction — the exact data behind the paper's per-server bar plots.
func WriteFigure3CSV(w io.Writer, f Figure3) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vantage", "server", "differential"}); err != nil {
		return err
	}
	vantages := make([]string, 0, len(f.PerVantage))
	for v := range f.PerVantage {
		vantages = append(vantages, v)
	}
	sort.Strings(vantages)
	for _, v := range vantages {
		for _, sd := range f.PerVantage[v] {
			err := cw.Write([]string{
				v,
				sd.Server.String(),
				strconv.FormatFloat(sd.Fraction, 'f', 4, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV emits the summary statistics as key,value rows plus
// one row per sample path.
func WriteFigure4CSV(w io.Writer, f Figure4) error {
	cw := csv.NewWriter(w)
	rows := [][]string{
		{"metric", "value"},
		{"hop_observations", strconv.Itoa(f.TotalObservations)},
		{"responded", strconv.Itoa(f.RespondedObservations)},
		{"preserved", strconv.Itoa(f.PreservedObservations)},
		{"modified", strconv.Itoa(f.ModifiedObservations)},
		{"ce_marks", strconv.Itoa(f.CEObservations)},
		{"strip_location_routers", strconv.Itoa(f.StripLocationRouters)},
		{"always_strip", strconv.Itoa(f.AlwaysStripRouters)},
		{"sometimes_strip", strconv.Itoa(f.SometimesStrip)},
		{"boundary_strips", strconv.Itoa(f.BoundaryStrips)},
		{"determinable_strips", strconv.Itoa(f.DeterminableStrips)},
		{"boundary_fraction", strconv.FormatFloat(f.BoundaryFraction, 'f', 4, 64)},
		{"ases_seen", strconv.Itoa(f.ASesSeen)},
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV emits one row per trace: vantage, index, reachable,
// negotiated.
func WriteFigure5CSV(w io.Writer, f Figure5) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vantage", "trace", "tcp_reachable", "ecn_negotiated"}); err != nil {
		return err
	}
	for _, p := range f.Points {
		err := cw.Write([]string{
			p.Vantage,
			strconv.Itoa(p.Index),
			strconv.Itoa(p.Reachable),
			strconv.Itoa(p.Negotiated),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure6CSV emits year,pct,source rows (literature + measured).
func WriteFigure6CSV(w io.Writer, f Figure6) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"year", "pct", "source"}); err != nil {
		return err
	}
	all := append(append([]HistoricalPoint{}, f.Series...), f.Measured)
	for _, p := range all {
		err := cw.Write([]string{
			strconv.FormatFloat(p.Year, 'f', 1, 64),
			strconv.FormatFloat(p.Pct, 'f', 2, 64),
			p.Source,
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV emits one row per location.
func WriteTable2CSV(w io.Writer, t Table2) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"location", "avg_unreachable_udp_ect", "avg_also_fail_tcp_ecn"}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		err := cw.Write([]string{
			r.Vantage,
			strconv.FormatFloat(r.AvgUnreachableECT, 'f', 2, 64),
			strconv.FormatFloat(r.AvgAlsoFailTCPECN, 'f', 2, 64),
		})
		if err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"phi", strconv.FormatFloat(t.Phi, 'f', 4, 64), ""}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
