package analysis

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/packet"
)

// proseDataset: two vantages, two batches; vantage B is flaky, batch 2
// loses a server (churn).
func proseDataset() *dataset.Dataset {
	d := &dataset.Dataset{}
	mk := func(vantage string, batch, reachable int, idx int) dataset.Trace {
		tr := dataset.Trace{Vantage: vantage, Batch: batch, Index: idx}
		for i := 0; i < 10; i++ {
			o := dataset.Observation{Server: packet.AddrFrom4(16, 9, 0, byte(i))}
			if i < reachable {
				o.UDPReachable = true
				o.UDPECTReachable = true
			}
			tr.Observations = append(tr.Observations, o)
		}
		return tr
	}
	d.Traces = append(d.Traces,
		mk("steady", 1, 10, 0), mk("steady", 1, 10, 1),
		mk("steady", 2, 9, 2), mk("steady", 2, 9, 3),
		mk("flaky", 1, 10, 4), mk("flaky", 1, 6, 5),
		mk("flaky", 2, 9, 6), mk("flaky", 2, 5, 7),
	)
	return d
}

func TestComputeProse(t *testing.T) {
	p := ComputeProse(proseDataset())
	if p.AvgUDPReachable != 8.5 {
		t.Errorf("avg = %v", p.AvgUDPReachable)
	}
	if p.Batch1Avg != 9.0 || p.Batch2Avg != 8.0 {
		t.Errorf("batch avgs = %v / %v", p.Batch1Avg, p.Batch2Avg)
	}
	if p.Batch1Avg <= p.Batch2Avg {
		t.Error("early batch must exceed late batch")
	}
	if len(p.PerVantage) != 2 {
		t.Fatalf("vantages = %d", len(p.PerVantage))
	}

	worst, ok := p.WorstVantage()
	if !ok || worst.Vantage != "flaky" {
		t.Errorf("worst = %+v", worst)
	}
	noisiest, ok := p.NoisiestVantage()
	if !ok || noisiest.Vantage != "flaky" {
		t.Errorf("noisiest = %+v", noisiest)
	}
}

func TestComputeProseEmpty(t *testing.T) {
	p := ComputeProse(&dataset.Dataset{})
	if p.AvgUDPReachable != 0 || len(p.PerVantage) != 0 {
		t.Errorf("empty prose = %+v", p)
	}
	if _, ok := p.WorstVantage(); ok {
		t.Error("worst on empty dataset")
	}
	if _, ok := p.NoisiestVantage(); ok {
		t.Error("noisiest on empty dataset")
	}
}

func TestRenderProse(t *testing.T) {
	out := RenderProse(ComputeProse(proseDataset()))
	for _, want := range []string{"batch 1", "flaky", "steady", "poorest reachability: flaky", "most variable: flaky"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
