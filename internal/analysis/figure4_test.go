package analysis

import (
	"strings"
	"testing"

	"repro/internal/asn"

	"repro/internal/ecn"
	"repro/internal/iptable"
	"repro/internal/packet"
	"repro/internal/traceroute"
)

// synthPath builds observations for one vantage→target path where hops
// at index >= stripAt (0-based) return a bleached quotation. Hop
// addresses come from hopAddrs.
func synthPath(vantage string, target packet.Addr, hopAddrs []packet.Addr, stripAt int) []traceroute.PathObservation {
	var out []traceroute.PathObservation
	for i, hop := range hopAddrs {
		tr := ecn.Preserved
		quoted := ecn.ECT0
		if stripAt >= 0 && i >= stripAt {
			tr = ecn.Bleached
			quoted = ecn.NotECT
		}
		out = append(out, traceroute.PathObservation{
			Vantage: vantage,
			Target:  target,
			Observation: traceroute.Observation{
				TTL:        i + 1,
				Responded:  true,
				Hop:        hop,
				SentECN:    ecn.ECT0,
				QuotedECN:  quoted,
				Transition: tr,
			},
		})
	}
	return out
}

func synthASNTable() *asn.Table {
	t := asn.NewTable()
	t.Add(iptable.MustParsePrefix("16.0.0.0/16"), asn.Info{ASN: 100, Name: "a", Tier: 2})
	t.Add(iptable.MustParsePrefix("16.1.0.0/16"), asn.Info{ASN: 101, Name: "b", Tier: 3})
	t.Add(iptable.MustParsePrefix("16.2.0.0/16"), asn.Info{ASN: 102, Name: "c", Tier: 3})
	return t
}

func hop(as, i int) packet.Addr { return packet.AddrFrom4(16, byte(as), 1, byte(i)) }

func TestComputeFigure4CleanAndStripped(t *testing.T) {
	table := synthASNTable()
	target1 := packet.AddrFrom4(16, 1, 2, 1)
	target2 := packet.AddrFrom4(16, 2, 2, 1)

	var obs []traceroute.PathObservation
	// Clean path: 4 hops in AS 100 then AS 101.
	obs = append(obs, synthPath("v1", target1,
		[]packet.Addr{hop(0, 1), hop(0, 2), hop(1, 1), hop(1, 2)}, -1)...)
	// Stripped path: strip begins at hop 3 (first hop of AS 102 — an AS
	// boundary strip location).
	obs = append(obs, synthPath("v1", target2,
		[]packet.Addr{hop(0, 1), hop(0, 2), hop(2, 1), hop(2, 2)}, 2)...)

	f := ComputeFigure4(obs, table)
	if f.TotalObservations != 8 || f.RespondedObservations != 8 {
		t.Errorf("observations = %d/%d", f.TotalObservations, f.RespondedObservations)
	}
	if f.PreservedObservations != 6 || f.ModifiedObservations != 2 {
		t.Errorf("preserved/modified = %d/%d, want 6/2", f.PreservedObservations, f.ModifiedObservations)
	}
	if f.StripLocationRouters != 1 {
		t.Fatalf("strip locations = %d, want 1 (first red hop only)", f.StripLocationRouters)
	}
	if f.AlwaysStripRouters != 1 || f.SometimesStrip != 0 {
		t.Errorf("always/sometimes = %d/%d", f.AlwaysStripRouters, f.SometimesStrip)
	}
	if f.BoundaryStrips != 1 || f.DeterminableStrips != 1 {
		t.Errorf("boundary = %d/%d; strip at hop(2,1) follows hop(0,2): AS 100→102", f.BoundaryStrips, f.DeterminableStrips)
	}
	if f.ASesSeen != 3 {
		t.Errorf("ASes = %d", f.ASesSeen)
	}
	if f.CEObservations != 0 {
		t.Errorf("CE = %d", f.CEObservations)
	}
}

func TestComputeFigure4SometimesStrip(t *testing.T) {
	table := synthASNTable()
	target := packet.AddrFrom4(16, 1, 2, 1)
	hops := []packet.Addr{hop(0, 1), hop(1, 1), hop(1, 2)}

	var obs []traceroute.PathObservation
	// Same path traced twice: strips once at hop 2, clean the other time.
	obs = append(obs, synthPath("v1", target, hops, 1)...)
	obs = append(obs, synthPath("v2", target, hops, -1)...)

	f := ComputeFigure4(obs, table)
	if f.StripLocationRouters != 1 {
		t.Fatalf("strip locations = %d", f.StripLocationRouters)
	}
	if f.SometimesStrip != 1 || f.AlwaysStripRouters != 0 {
		t.Errorf("always/sometimes = %d/%d, want 0/1", f.AlwaysStripRouters, f.SometimesStrip)
	}
}

func TestComputeFigure4InteriorStripNotBoundary(t *testing.T) {
	table := synthASNTable()
	target := packet.AddrFrom4(16, 1, 2, 1)
	// Strip at the SECOND hop of AS 101: previous hop same AS.
	obs := synthPath("v1", target,
		[]packet.Addr{hop(0, 1), hop(1, 1), hop(1, 2)}, 2)

	f := ComputeFigure4(obs, table)
	if f.BoundaryStrips != 0 || f.DeterminableStrips != 1 {
		t.Errorf("boundary = %d/%d, want 0/1", f.BoundaryStrips, f.DeterminableStrips)
	}
}

func TestComputeFigure4CEClassifiedSeparately(t *testing.T) {
	table := synthASNTable()
	target := packet.AddrFrom4(16, 1, 2, 1)
	obs := []traceroute.PathObservation{{
		Vantage: "v1", Target: target,
		Observation: traceroute.Observation{
			TTL: 1, Responded: true, Hop: hop(0, 1),
			SentECN: ecn.ECT0, QuotedECN: ecn.CE, Transition: ecn.Marked,
		},
	}}
	f := ComputeFigure4(obs, table)
	if f.CEObservations != 1 {
		t.Errorf("CE observations = %d", f.CEObservations)
	}
	if f.StripLocationRouters != 0 {
		t.Error("CE mark misclassified as strip")
	}
}

func TestComputeFigure4SilentHops(t *testing.T) {
	table := synthASNTable()
	target := packet.AddrFrom4(16, 1, 2, 1)
	obs := []traceroute.PathObservation{
		{Vantage: "v1", Target: target, Observation: traceroute.Observation{TTL: 1, Responded: true, Hop: hop(0, 1), SentECN: ecn.ECT0, QuotedECN: ecn.ECT0, Transition: ecn.Preserved}},
		{Vantage: "v1", Target: target, Observation: traceroute.Observation{TTL: 2, SentECN: ecn.ECT0}}, // silent
	}
	f := ComputeFigure4(obs, table)
	if f.TotalObservations != 2 || f.RespondedObservations != 1 {
		t.Errorf("observations = %d/%d", f.TotalObservations, f.RespondedObservations)
	}
}

func TestRenderFigure4(t *testing.T) {
	table := synthASNTable()
	target := packet.AddrFrom4(16, 1, 2, 1)
	obs := synthPath("v1", target, []packet.Addr{hop(0, 1), hop(1, 1)}, 1)
	f := ComputeFigure4(obs, table)
	out := RenderFigure4(f)
	if !strings.Contains(out, "GR") {
		t.Errorf("sample path missing G/R run:\n%s", out)
	}
	if !strings.Contains(out, "strip locations") {
		t.Error("summary missing")
	}
}
