package analysis

import (
	"fmt"
	"strings"
)

// --- CE-mark report (congestion substrate) --------------------------------
//
// The paper's measurements saw no CE at all ("we see no evidence of
// servers or middleboxes that mark ECN CE"). The congestion substrate
// makes CE happen on purpose: AQM-managed bottlenecks mark ECT traffic
// under load. This report validates the resulting signal the way Diana
// & Lochin's "ECN verbose mode" proposes to use it — the fraction of
// delivered ECT-capable traffic arriving CE estimates path congestion —
// by comparing the receiver-side CE ratio observed at each vantage
// against the marking ground truth and mean occupancy of the bottleneck
// queues themselves.

// CEMarkSample is one vantage shard's congestion view: what the vantage
// host observed arriving, and what the bottleneck queues on its paths
// actually did. The campaign engine produces one per shard when the
// world contains bottlenecks.
type CEMarkSample struct {
	Vantage string

	// Receiver-side observation (a tap at the vantage host): arriving
	// packets by ECN codepoint class.
	InECT    uint64 // arrived ECT(0)/ECT(1)
	InCE     uint64 // arrived CE
	InNotECT uint64

	// Ground truth summed over the shard's bottleneck queues (real wire
	// packets only — phantom background is excluded).
	QueueECT           uint64 // ECT packets admitted
	QueueCEMarked      uint64 // of those, CE-marked
	QueueNotECTDropped uint64 // not-ECT packets dropped by congestion action
	QueueTailDropped   uint64 // full-buffer drops (any codepoint, incl. phantoms)
	QueueOffered       uint64 // packets presented, incl. phantom background
	QueueSumBacklog    uint64 // backlog seen by each arrival, summed

	// Utilization is the configured background load fraction.
	Utilization float64
}

// CEMarkRow is one vantage's reduced report line.
type CEMarkRow struct {
	Vantage string
	// ObservedCERatio is CE/(CE+ECT) over traffic delivered to the
	// vantage — the verbose-mode path-congestion estimate.
	ObservedCERatio float64
	// QueueMarkRatio is the marked fraction of ECT packets the
	// bottleneck queues admitted — the ground truth the estimate should
	// track.
	QueueMarkRatio float64
	// AvgBacklog is the mean queue occupancy (packets) an arrival saw.
	AvgBacklog float64

	InCE, InECT   uint64
	NotECTDropped uint64
	TailDropped   uint64
}

// CEMarkReport is the rendered experiment: per-vantage rows plus
// campaign-level aggregates.
type CEMarkReport struct {
	Rows        []CEMarkRow
	Utilization float64

	// Aggregates over all rows.
	ObservedCERatio float64
	QueueMarkRatio  float64
}

// ComputeCEMarkReport reduces per-shard samples to the report. Rows
// keep the sample order (canonical vantage order, by construction).
func ComputeCEMarkReport(samples []CEMarkSample) CEMarkReport {
	var rep CEMarkReport
	var inCE, inECT, qMarked, qECT uint64
	for _, s := range samples {
		row := CEMarkRow{
			Vantage:       s.Vantage,
			InCE:          s.InCE,
			InECT:         s.InECT,
			NotECTDropped: s.QueueNotECTDropped,
			TailDropped:   s.QueueTailDropped,
		}
		if n := s.InCE + s.InECT; n > 0 {
			row.ObservedCERatio = float64(s.InCE) / float64(n)
		}
		if s.QueueECT > 0 {
			row.QueueMarkRatio = float64(s.QueueCEMarked) / float64(s.QueueECT)
		}
		if s.QueueOffered > 0 {
			row.AvgBacklog = float64(s.QueueSumBacklog) / float64(s.QueueOffered)
		}
		rep.Rows = append(rep.Rows, row)
		rep.Utilization = s.Utilization
		inCE += s.InCE
		inECT += s.InECT
		qMarked += s.QueueCEMarked
		qECT += s.QueueECT
	}
	if n := inCE + inECT; n > 0 {
		rep.ObservedCERatio = float64(inCE) / float64(n)
	}
	if qECT > 0 {
		rep.QueueMarkRatio = float64(qMarked) / float64(qECT)
	}
	return rep
}

// RenderCEMarkReport prints the per-vantage estimator-vs-ground-truth
// table.
func RenderCEMarkReport(r CEMarkReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CE-mark report: verbose-mode CE ratio vs bottleneck ground truth (utilization %.2f)\n",
		r.Utilization)
	fmt.Fprintf(&b, "%-22s %9s %9s %9s %10s %9s\n",
		"Vantage", "obs CE%", "queue CE%", "avg qlen", "!ECT drop", "tail drop")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %8.2f%% %8.2f%% %9.1f %10d %9d\n",
			row.Vantage, 100*row.ObservedCERatio, 100*row.QueueMarkRatio,
			row.AvgBacklog, row.NotECTDropped, row.TailDropped)
	}
	fmt.Fprintf(&b, "%-22s %8.2f%% %8.2f%%\n", "aggregate",
		100*r.ObservedCERatio, 100*r.QueueMarkRatio)
	return b.String()
}
