package analysis

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/packet"
)

// parseCSV reads back emitted CSV for verification.
func parseCSV(t *testing.T, data string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not re-parse: %v", err)
	}
	return rows
}

func TestWriteFigure2CSV(t *testing.T) {
	f := ComputeFigure2a(synthDataset())
	var buf bytes.Buffer
	if err := WriteFigure2CSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 1+len(f.Points) {
		t.Fatalf("rows = %d, want header + %d", len(rows), len(f.Points))
	}
	if rows[0][0] != "vantage" || rows[0][3] != "pct" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "Perkins home" {
		t.Errorf("first row = %v", rows[1])
	}
}

func TestWriteFigure3CSV(t *testing.T) {
	f := ComputeFigure3a(synthDataset())
	var buf bytes.Buffer
	if err := WriteFigure3CSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// 2 vantages × 10 servers + header.
	if len(rows) != 21 {
		t.Fatalf("rows = %d, want 21", len(rows))
	}
	// Vantages sorted: EC2 Tokyo before Perkins home.
	if rows[1][0] != "EC2 Tokyo" {
		t.Errorf("first data row vantage = %q", rows[1][0])
	}
	// The firewalled server (index 0) should show fraction 1.0000.
	found := false
	for _, r := range rows[1:] {
		if r[2] == "1.0000" {
			found = true
		}
	}
	if !found {
		t.Error("no 100% differential row")
	}
}

func TestWriteFigure5And6CSV(t *testing.T) {
	f5 := ComputeFigure5(synthDataset())
	var buf bytes.Buffer
	if err := WriteFigure5CSV(&buf, f5); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, buf.String()); len(rows) != 1+len(f5.Points) {
		t.Errorf("figure5 rows = %d", len(rows))
	}

	f6 := ComputeFigure6(f5)
	buf.Reset()
	if err := WriteFigure6CSV(&buf, f6); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 1+len(HistoricalECN)+1 {
		t.Errorf("figure6 rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last[2] != "measured" {
		t.Errorf("last row = %v, want measured point", last)
	}
}

func TestWriteTable2CSV(t *testing.T) {
	t2 := ComputeTable2(synthDataset())
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, t2); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// header + 2 locations + phi row.
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[3][0] != "phi" {
		t.Errorf("phi row = %v", rows[3])
	}
}

func TestWriteFigure4CSV(t *testing.T) {
	table := synthASNTable()
	target := hop(1, 200)
	obs := synthPath("v1", target, []packet.Addr{hop(0, 1), hop(1, 1)}, 1)
	f4 := ComputeFigure4(obs, table)
	var buf bytes.Buffer
	if err := WriteFigure4CSV(&buf, f4); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) < 10 {
		t.Errorf("figure4 rows = %d", len(rows))
	}
	byKey := map[string]string{}
	for _, r := range rows[1:] {
		byKey[r[0]] = r[1]
	}
	if byKey["strip_location_routers"] != "1" {
		t.Errorf("strip rows = %v", byKey)
	}
}
