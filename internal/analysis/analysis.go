// Package analysis reduces campaign datasets to the paper's figures and
// tables, and renders them as text. Each experiment has a Compute
// function returning a typed result (consumed by tests and benchmarks)
// and a Render function producing the human-readable artefact that
// cmd/ecnreport prints.
//
// Experiment index (see DESIGN.md §4): Table 1 and Figure 1 describe the
// server population; Figures 2 and 3 cover UDP reachability with and
// without ECT(0); Figure 4 covers path transparency from traceroutes;
// Figure 5 and Table 2 cover TCP; Figure 6 places the TCP result in its
// historical series.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/packet"
	"repro/internal/stats"
)

// --- Table 1 / Figure 1 ---------------------------------------------------

// Table1 is the geographic distribution of the probed servers.
type Table1 struct {
	Rows  []Table1Row
	Total int
}

// Table1Row is one region's count.
type Table1Row struct {
	Region geo.Region
	Count  int
}

// ComputeTable1 tallies server regions via the geo database.
func ComputeTable1(servers []packet.Addr, db *geo.DB) Table1 {
	counts := db.RegionCounts(servers)
	var t Table1
	for _, r := range geo.Regions() {
		t.Rows = append(t.Rows, Table1Row{Region: r, Count: counts[r]})
		t.Total += counts[r]
	}
	return t
}

// RenderTable1 prints the paper's Table 1 layout.
func RenderTable1(t Table1) string {
	var b strings.Builder
	b.WriteString("Table 1: Geographic distribution of NTP pool servers\n")
	b.WriteString(fmt.Sprintf("%-16s %s\n", "Region", "NTP Server Count"))
	for _, row := range t.Rows {
		b.WriteString(fmt.Sprintf("%-16s %d\n", row.Region, row.Count))
	}
	b.WriteString(fmt.Sprintf("%-16s %d\n", "Total", t.Total))
	return b.String()
}

// Figure1 is the world map of server locations.
type Figure1 struct {
	Points []geo.Point
}

// ComputeFigure1 locates every server.
func ComputeFigure1(servers []packet.Addr, db *geo.DB) Figure1 {
	return Figure1{Points: db.Locate(servers)}
}

// RenderFigure1 draws an ASCII world scatter (longitude × latitude,
// density as digits) — the textual analogue of the paper's map.
func RenderFigure1(f Figure1) string {
	const w, h = 72, 18
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	for _, p := range f.Points {
		if p.Loc.Region == geo.Unknown {
			continue
		}
		x := int((p.Loc.Lon + 180) / 360 * float64(w-1))
		y := int((90 - p.Loc.Lat) / 180 * float64(h-1))
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		grid[y][x]++
	}
	var b strings.Builder
	b.WriteString("Figure 1: Geographic locations of NTP pool servers (digit = log10 density)\n")
	for _, row := range grid {
		for _, n := range row {
			switch {
			case n == 0:
				b.WriteByte('.')
			case n < 10:
				b.WriteByte('1')
			case n < 100:
				b.WriteByte('2')
			default:
				b.WriteByte('3')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Figure 2 --------------------------------------------------------------

// TracePoint is one trace's percentage for a Figure 2 style plot.
type TracePoint struct {
	Vantage string
	Index   int
	Batch   int
	Pct     float64
}

// Figure2 is the per-trace reachability comparison.
type Figure2 struct {
	// Points in campaign order, one per trace.
	Points []TracePoint
	// Average over traces (the paper's 98.97% / 99.45%).
	Average float64
	Minimum float64
	// AvgUDPReachable is the §4.1 prose statistic (paper: 2253).
	AvgUDPReachable float64
	// AvgECTReachable is the ECT(0) counterpart.
	AvgECTReachable float64
	// PooledCILow/High bound the pooled proportion with a 95% Wilson
	// interval (percent).
	PooledCILow  float64
	PooledCIHigh float64
}

// ComputeFigure2a: of the servers reachable with not-ECT marked UDP, the
// percentage also reachable with ECT(0) marked UDP, per trace.
func ComputeFigure2a(d *dataset.Dataset) Figure2 {
	return computeFigure2(d, func(o dataset.Observation) (denom, num bool) {
		return o.UDPReachable, o.UDPReachable && o.UDPECTReachable
	})
}

// ComputeFigure2b: the converse — of the servers reachable with ECT(0)
// marked UDP, the percentage also reachable with not-ECT UDP.
func ComputeFigure2b(d *dataset.Dataset) Figure2 {
	return computeFigure2(d, func(o dataset.Observation) (denom, num bool) {
		return o.UDPECTReachable, o.UDPECTReachable && o.UDPReachable
	})
}

func computeFigure2(d *dataset.Dataset, classify func(dataset.Observation) (bool, bool)) Figure2 {
	var f Figure2
	var pcts, udpCounts, ectCounts []float64
	for _, t := range d.Traces {
		denomN, numN := 0, 0
		udpN, ectN := 0, 0
		for _, o := range t.Observations {
			denom, num := classify(o)
			if denom {
				denomN++
			}
			if num {
				numN++
			}
			if o.UDPReachable {
				udpN++
			}
			if o.UDPECTReachable {
				ectN++
			}
		}
		pct := 100.0
		if denomN > 0 {
			pct = 100 * float64(numN) / float64(denomN)
		}
		f.Points = append(f.Points, TracePoint{Vantage: t.Vantage, Index: t.Index, Batch: t.Batch, Pct: pct})
		pcts = append(pcts, pct)
		udpCounts = append(udpCounts, float64(udpN))
		ectCounts = append(ectCounts, float64(ectN))
	}
	f.Average = stats.Mean(pcts)
	f.Minimum = stats.Min(pcts)
	f.AvgUDPReachable = stats.Mean(udpCounts)
	f.AvgECTReachable = stats.Mean(ectCounts)
	// 95% Wilson interval over the pooled counts: the uncertainty the
	// paper's single headline number carries.
	totalDenom, totalNum := 0, 0
	for _, t := range d.Traces {
		for _, o := range t.Observations {
			denom, num := classify(o)
			if denom {
				totalDenom++
			}
			if num {
				totalNum++
			}
		}
	}
	lo, hi := stats.WilsonInterval(totalNum, totalDenom)
	f.PooledCILow, f.PooledCIHigh = 100*lo, 100*hi
	return f
}

// RenderFigure2 draws the per-trace bars, grouped by vantage, on the
// paper's 90–100% scale.
func RenderFigure2(f Figure2, caption string) string {
	var b strings.Builder
	b.WriteString(caption + "\n")
	b.WriteString(fmt.Sprintf("average = %.2f%%   minimum = %.2f%%   pooled 95%% CI [%.2f%%, %.2f%%]   scale: 90%%..100%%\n",
		f.Average, f.Minimum, f.PooledCILow, f.PooledCIHigh))

	// Group points by vantage, preserving first-seen order.
	order := []string{}
	byVantage := map[string][]TracePoint{}
	for _, p := range f.Points {
		if _, ok := byVantage[p.Vantage]; !ok {
			order = append(order, p.Vantage)
		}
		byVantage[p.Vantage] = append(byVantage[p.Vantage], p)
	}
	for _, v := range order {
		pts := byVantage[v]
		b.WriteString(fmt.Sprintf("%-22s ", v))
		for _, p := range pts {
			b.WriteByte(barGlyph(p.Pct))
		}
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.Pct
		}
		b.WriteString(fmt.Sprintf("  avg %.2f%%\n", stats.Mean(vals)))
	}
	return b.String()
}

// barGlyph maps a 90–100% value onto a 10-level bar character.
func barGlyph(pct float64) byte {
	levels := []byte("0123456789#")
	idx := int(pct) - 90
	if idx < 0 {
		idx = 0
	}
	if idx > 10 {
		idx = 10
	}
	return levels[idx]
}

// --- Figure 3 --------------------------------------------------------------

// ServerDifferential is one server's differential reachability from one
// vantage: the fraction of traces where it was reachable one way but not
// the other.
type ServerDifferential struct {
	Server packet.Addr
	// Fraction in [0, 1].
	Fraction float64
}

// Figure3 is the per-server differential reachability analysis.
type Figure3 struct {
	// PerVantage maps vantage → per-server differential fractions
	// (sorted by server address).
	PerVantage map[string][]ServerDifferential
	// SpikesOver50 counts servers with >50% differential per vantage
	// (paper 3a: "between 9 and 14, depending on the location").
	SpikesOver50 map[string]int
	// TransientPerVantage counts servers with non-zero differential at
	// or below 50% from that vantage — the paper's "around 4× more
	// servers that are transiently unreachable" population, which is
	// meaningful per location (lossy access links inflate it globally).
	TransientPerVantage map[string]int
	// GlobalSpikes counts servers >50% from at least one vantage.
	GlobalSpikes int
	// TransientServers counts servers with non-zero differential that
	// never cross 50% anywhere.
	TransientServers int
}

// ComputeFigure3a measures servers reachable via not-ECT but not ECT(0).
func ComputeFigure3a(d *dataset.Dataset) Figure3 {
	return computeFigure3(d, func(o dataset.Observation) bool {
		return o.UDPReachable && !o.UDPECTReachable
	})
}

// ComputeFigure3b measures the converse.
func ComputeFigure3b(d *dataset.Dataset) Figure3 {
	return computeFigure3(d, func(o dataset.Observation) bool {
		return o.UDPECTReachable && !o.UDPReachable
	})
}

func computeFigure3(d *dataset.Dataset, differential func(dataset.Observation) bool) Figure3 {
	f := Figure3{
		PerVantage:          map[string][]ServerDifferential{},
		SpikesOver50:        map[string]int{},
		TransientPerVantage: map[string]int{},
	}
	type key struct {
		vantage string
		server  packet.Addr
	}
	diffCount := map[key]int{}
	traceCount := map[string]int{}
	servers := map[packet.Addr]bool{}
	for _, t := range d.Traces {
		traceCount[t.Vantage]++
		for _, o := range t.Observations {
			servers[o.Server] = true
			if differential(o) {
				diffCount[key{t.Vantage, o.Server}]++
			}
		}
	}
	sortedServers := make([]packet.Addr, 0, len(servers))
	for s := range servers {
		sortedServers = append(sortedServers, s)
	}
	sort.Slice(sortedServers, func(i, j int) bool { return sortedServers[i].Less(sortedServers[j]) })

	spikeAnywhere := map[packet.Addr]bool{}
	transient := map[packet.Addr]bool{}
	for vantage, n := range traceCount {
		list := make([]ServerDifferential, 0, len(sortedServers))
		for _, s := range sortedServers {
			frac := float64(diffCount[key{vantage, s}]) / float64(n)
			list = append(list, ServerDifferential{Server: s, Fraction: frac})
			if frac > 0.5 {
				f.SpikesOver50[vantage]++
				spikeAnywhere[s] = true
			} else if frac > 0 {
				f.TransientPerVantage[vantage]++
				transient[s] = true
			}
		}
		f.PerVantage[vantage] = list
	}
	f.GlobalSpikes = len(spikeAnywhere)
	for s := range transient {
		if !spikeAnywhere[s] {
			f.TransientServers++
		}
	}
	return f
}

// RenderFigure3 summarises the differential plot: spike counts per
// vantage plus the global transient/persistent split.
func RenderFigure3(f Figure3, caption string) string {
	var b strings.Builder
	b.WriteString(caption + "\n")
	vantages := make([]string, 0, len(f.SpikesOver50))
	for v := range f.PerVantage {
		vantages = append(vantages, v)
	}
	sort.Strings(vantages)
	for _, v := range vantages {
		b.WriteString(fmt.Sprintf("%-22s servers with differential >50%%: %-4d transient (0<f≤50%%): %d\n",
			v, f.SpikesOver50[v], f.TransientPerVantage[v]))
	}
	b.WriteString(fmt.Sprintf("servers >50%% from some vantage: %d;  transiently differential only: %d (%.1fx)\n",
		f.GlobalSpikes, f.TransientServers, ratio(f.TransientServers, f.GlobalSpikes)))
	return b.String()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
