package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// --- Figure 5 --------------------------------------------------------------

// Figure5Point is one trace's TCP reachability split.
type Figure5Point struct {
	Vantage string
	Index   int
	// Reachable servers over TCP; of those, how many negotiated ECN.
	Reachable  int
	Negotiated int
}

// Figure5 is the TCP/ECN reachability analysis of Section 4.3.
type Figure5 struct {
	Points []Figure5Point
	// Paper averages: 1334 reachable, 1095 negotiating (82.0%).
	AvgReachable    float64
	AvgNegotiated   float64
	NegotiationRate float64 // percentage
}

// ComputeFigure5 reduces per-trace TCP outcomes.
func ComputeFigure5(d *dataset.Dataset) Figure5 {
	var f Figure5
	var reach, nego []float64
	for _, t := range d.Traces {
		r, n := 0, 0
		for _, o := range t.Observations {
			if o.TCPReachable {
				r++
				if o.TCPECN {
					n++
				}
			}
		}
		f.Points = append(f.Points, Figure5Point{Vantage: t.Vantage, Index: t.Index, Reachable: r, Negotiated: n})
		reach = append(reach, float64(r))
		nego = append(nego, float64(n))
	}
	f.AvgReachable = stats.Mean(reach)
	f.AvgNegotiated = stats.Mean(nego)
	if f.AvgReachable > 0 {
		f.NegotiationRate = 100 * f.AvgNegotiated / f.AvgReachable
	}
	return f
}

// RenderFigure5 prints per-vantage stacked counts.
func RenderFigure5(f Figure5) string {
	var b strings.Builder
	b.WriteString("Figure 5: Reachability of web servers using TCP and TCP with ECN\n")
	b.WriteString(fmt.Sprintf("average reachable %.0f, negotiating ECN %.0f (%.1f%%)\n",
		f.AvgReachable, f.AvgNegotiated, f.NegotiationRate))

	order := []string{}
	byVantage := map[string][]Figure5Point{}
	for _, p := range f.Points {
		if _, ok := byVantage[p.Vantage]; !ok {
			order = append(order, p.Vantage)
		}
		byVantage[p.Vantage] = append(byVantage[p.Vantage], p)
	}
	for _, v := range order {
		pts := byVantage[v]
		var r, n float64
		for _, p := range pts {
			r += float64(p.Reachable)
			n += float64(p.Negotiated)
		}
		r /= float64(len(pts))
		n /= float64(len(pts))
		b.WriteString(fmt.Sprintf("%-22s reachable %5.0f  | ECN yes %5.0f  | ECN no %5.0f\n", v, r, n, r-n))
	}
	return b.String()
}

// --- Figure 6 --------------------------------------------------------------

// HistoricalPoint is a literature measurement of TCP ECN negotiation.
type HistoricalPoint struct {
	Year   float64
	Pct    float64
	Source string
}

// HistoricalECN is the literature series the paper plots in Figure 6:
// Medina et al. (2000, 2004), Langley (2008), Bauer et al. (2011),
// Kühlewind et al. (April and August 2012), and Trammell et al. (2014).
var HistoricalECN = []HistoricalPoint{
	{2000.5, 0.2, "Medina"},
	{2004.5, 1.1, "Medina"},
	{2008.7, 1.07, "Langley"},
	{2011.5, 17.2, "Bauer"},
	{2012.3, 25.16, "Kuhlewind"},
	{2012.6, 29.48, "Kuhlewind"},
	{2014.7, 56.17, "Trammell"},
}

// Figure6 is the ECN deployment trend with our measured point appended.
type Figure6 struct {
	Series   []HistoricalPoint
	Measured HistoricalPoint
}

// ComputeFigure6 combines the literature series with the campaign's
// negotiation rate.
func ComputeFigure6(f5 Figure5) Figure6 {
	return Figure6{
		Series:   HistoricalECN,
		Measured: HistoricalPoint{Year: 2015.6, Pct: f5.NegotiationRate, Source: "measured"},
	}
}

// RenderFigure6 draws the trend as an ASCII scatter, year × percentage.
func RenderFigure6(f Figure6) string {
	const w, h = 64, 20
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	all := append(append([]HistoricalPoint{}, f.Series...), f.Measured)
	minYear, maxYear := 2000.0, 2016.0
	plot := func(p HistoricalPoint, glyph byte) {
		x := int((p.Year - minYear) / (maxYear - minYear) * float64(w-1))
		y := int((100 - p.Pct) / 100 * float64(h-1))
		if x < 0 || x >= w || y < 0 || y >= h {
			return
		}
		grid[y][x] = glyph
	}
	for _, p := range f.Series {
		plot(p, 'o')
	}
	plot(f.Measured, '*')

	var b strings.Builder
	b.WriteString("Figure 6: Trends in ECN TCP capability (o = literature, * = this campaign)\n")
	for i, row := range grid {
		pct := 100 - i*100/(h-1)
		b.WriteString(fmt.Sprintf("%3d%% |%s|\n", pct, string(row)))
	}
	b.WriteString("      " + strings.Repeat("-", w) + "\n")
	b.WriteString("      2000" + strings.Repeat(" ", w-12) + "2016\n")
	sort.Slice(all, func(i, j int) bool { return all[i].Year < all[j].Year })
	for _, p := range all {
		b.WriteString(fmt.Sprintf("  %.1f  %6.2f%%  %s\n", p.Year, p.Pct, p.Source))
	}
	return b.String()
}

// --- Table 2 --------------------------------------------------------------

// Table2Row is one vantage's UDP/TCP correlation numbers.
type Table2Row struct {
	Vantage string
	// AvgUnreachableECT: servers reachable via not-ECT UDP but not via
	// ECT(0) UDP, averaged over the vantage's traces.
	AvgUnreachableECT float64
	// AvgAlsoFailTCPECN: of those, how many were reachable over TCP yet
	// refused to negotiate ECN — the genuinely cross-protocol failures.
	// Servers with no web server at all are excluded: nothing can be
	// said about their TCP ECN stance.
	AvgAlsoFailTCPECN float64
}

// Table2 is the correlation analysis of Section 4.4.
type Table2 struct {
	Rows []Table2Row
	// Phi is the association between "UDP-ECT unreachable" and "refuses
	// TCP ECN" over all (trace, server) pairs where the server was TCP
	// reachable. The paper reports only weak correlation.
	Phi float64
}

// ComputeTable2 reduces the cross-protocol comparison.
func ComputeTable2(d *dataset.Dataset) Table2 {
	var t Table2
	type acc struct {
		traces   int
		unreach  int
		alsoFail int
	}
	accs := map[string]*acc{}
	order := []string{}
	var n11, n10, n01, n00 int
	for _, tr := range d.Traces {
		a := accs[tr.Vantage]
		if a == nil {
			a = &acc{}
			accs[tr.Vantage] = a
			order = append(order, tr.Vantage)
		}
		a.traces++
		for _, o := range tr.Observations {
			udpECTFail := o.UDPReachable && !o.UDPECTReachable
			if udpECTFail {
				a.unreach++
				if o.TCPReachable && !o.TCPECN {
					a.alsoFail++
				}
			}
			// Contingency over TCP-reachable servers.
			if o.TCPReachable {
				refusesECN := !o.TCPECN
				switch {
				case udpECTFail && refusesECN:
					n11++
				case udpECTFail && !refusesECN:
					n10++
				case !udpECTFail && refusesECN:
					n01++
				default:
					n00++
				}
			}
		}
	}
	for _, v := range order {
		a := accs[v]
		t.Rows = append(t.Rows, Table2Row{
			Vantage:           v,
			AvgUnreachableECT: float64(a.unreach) / float64(a.traces),
			AvgAlsoFailTCPECN: float64(a.alsoFail) / float64(a.traces),
		})
	}
	t.Phi = stats.Phi(n11, n10, n01, n00)
	return t
}

// RenderTable2 prints the paper's Table 2 layout.
func RenderTable2(t Table2) string {
	var b strings.Builder
	b.WriteString("Table 2: Correlation between UDP and TCP reachability\n")
	b.WriteString(fmt.Sprintf("%-22s %-24s %s\n", "Location", "Avg unreachable UDP+ECT", "of those, fail ECN w/TCP"))
	for _, r := range t.Rows {
		b.WriteString(fmt.Sprintf("%-22s %-24.0f %.0f\n", r.Vantage, r.AvgUnreachableECT, r.AvgAlsoFailTCPECN))
	}
	b.WriteString(fmt.Sprintf("phi coefficient (UDP-ECT fail vs TCP-ECN refusal): %.3f (weak correlation)\n", t.Phi))
	return b.String()
}
