package analysis

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/iptable"
	"repro/internal/packet"
)

func addr(i int) packet.Addr { return packet.AddrFrom4(16, 9, byte(i>>8), byte(i)) }

// synthDataset builds a deterministic dataset: 2 vantages × 4 traces ×
// 10 servers. Server 0 is ECT-UDP-firewalled (differential in every
// trace), server 1 flaps once per vantage, server 2 has no web server,
// server 3 refuses TCP ECN.
func synthDataset() *dataset.Dataset {
	d := &dataset.Dataset{}
	idx := 0
	for _, v := range []string{"Perkins home", "EC2 Tokyo"} {
		for ti := 0; ti < 4; ti++ {
			tr := dataset.Trace{Vantage: v, Batch: 1 + ti/2, Index: idx}
			idx++
			for si := 0; si < 10; si++ {
				o := dataset.Observation{
					Server:          addr(si),
					UDPReachable:    true,
					UDPECTReachable: true,
					TCPReachable:    true,
					TCPECN:          true,
					HTTPStatus:      302,
				}
				switch si {
				case 0: // persistent ECT block; still negotiates TCP ECN
					o.UDPECTReachable = false
				case 1: // transient: differential in trace 0 only
					if ti == 0 {
						o.UDPECTReachable = false
					}
				case 2: // no web server
					o.TCPReachable = false
					o.TCPECN = false
					o.HTTPStatus = 0
				case 3: // refuses ECN with TCP
					o.TCPECN = false
				case 4: // offline in batch 2
					if ti >= 2 {
						o = dataset.Observation{Server: addr(si)}
					}
				case 5: // converse differential: ECT yes, not-ECT no
					o.UDPReachable = false
				}
				tr.Observations = append(tr.Observations, o)
			}
			d.Traces = append(d.Traces, tr)
		}
	}
	return d
}

func TestComputeFigure2a(t *testing.T) {
	f := ComputeFigure2a(synthDataset())
	if len(f.Points) != 8 {
		t.Fatalf("points = %d", len(f.Points))
	}
	// Trace 0: denominators: servers with UDPReachable: 9 (server 5
	// excluded); differential: servers 0 and 1 → 7/9.
	want0 := 100 * 7.0 / 9.0
	if diff := f.Points[0].Pct - want0; diff < -0.01 || diff > 0.01 {
		t.Errorf("trace 0 pct = %.3f, want %.3f", f.Points[0].Pct, want0)
	}
	// Later traces: only server 0 differential → 8/9 among batch-1.
	want1 := 100 * 8.0 / 9.0
	if diff := f.Points[1].Pct - want1; diff < -0.01 || diff > 0.01 {
		t.Errorf("trace 1 pct = %.3f, want %.3f", f.Points[1].Pct, want1)
	}
	if f.AvgUDPReachable <= 0 || f.AvgECTReachable <= 0 {
		t.Error("prose averages missing")
	}
	if f.Average <= 0 || f.Average > 100 {
		t.Errorf("average = %v", f.Average)
	}
}

func TestComputeFigure2b(t *testing.T) {
	f := ComputeFigure2b(synthDataset())
	// Server 5 is the only converse-differential; trace 0 has servers
	// with ECT reachable: 8 (server 0 and... server 0 ECT no, server 1
	// ECT no in trace 0, server 4 online, server 5 ECT yes) → count:
	// servers 2,3,4,5,6,7,8,9 → 8; differential server 5 → 7/8.
	want := 100 * 7.0 / 8.0
	if diff := f.Points[0].Pct - want; diff < -0.01 || diff > 0.01 {
		t.Errorf("trace 0 pct = %.3f, want %.3f", f.Points[0].Pct, want)
	}
}

func TestComputeFigure3a(t *testing.T) {
	f := ComputeFigure3a(synthDataset())
	for _, v := range []string{"Perkins home", "EC2 Tokyo"} {
		if got := f.SpikesOver50[v]; got != 1 {
			t.Errorf("%s spikes = %d, want 1 (the firewalled server)", v, got)
		}
		// Per-server fractions: server 0 = 100%, server 1 = 25%.
		list := f.PerVantage[v]
		if list[0].Fraction != 1.0 {
			t.Errorf("server 0 fraction = %v", list[0].Fraction)
		}
		if list[1].Fraction != 0.25 {
			t.Errorf("server 1 fraction = %v", list[1].Fraction)
		}
	}
	if f.GlobalSpikes != 1 {
		t.Errorf("global spikes = %d", f.GlobalSpikes)
	}
	if f.TransientServers != 1 {
		t.Errorf("transient servers = %d", f.TransientServers)
	}
}

func TestComputeFigure3b(t *testing.T) {
	f := ComputeFigure3b(synthDataset())
	if f.GlobalSpikes != 1 {
		t.Errorf("converse global spikes = %d, want 1 (server 5)", f.GlobalSpikes)
	}
}

func TestComputeFigure5(t *testing.T) {
	f := ComputeFigure5(synthDataset())
	// Per trace (batch 1): TCP reachable = 9 − server2 = 9? servers: 10
	// minus server 2 (no web) = 9; negotiated = 9 − server 3 = 8.
	p := f.Points[0]
	if p.Reachable != 9 || p.Negotiated != 8 {
		t.Errorf("trace 0 = %d/%d, want 9/8", p.Reachable, p.Negotiated)
	}
	if f.NegotiationRate < 85 || f.NegotiationRate > 92 {
		t.Errorf("negotiation rate = %.1f", f.NegotiationRate)
	}
}

func TestComputeTable2(t *testing.T) {
	tbl := ComputeTable2(synthDataset())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		// Avg unreachable: server 0 every trace + server 1 once = (4+1)/4.
		if r.AvgUnreachableECT != 1.25 {
			t.Errorf("%s avg unreachable = %v, want 1.25", r.Vantage, r.AvgUnreachableECT)
		}
		// Of those, fail TCP ECN: server 0 negotiates, server 1
		// negotiates → 0.
		if r.AvgAlsoFailTCPECN != 0 {
			t.Errorf("%s also-fail = %v, want 0", r.Vantage, r.AvgAlsoFailTCPECN)
		}
	}
	if tbl.Phi > 0.3 || tbl.Phi < -0.3 {
		t.Errorf("phi = %v; synthetic data has weak association", tbl.Phi)
	}
}

func TestComputeTable1AndFigure1(t *testing.T) {
	db := &geo.DB{}
	db.Add(iptable.MustParsePrefix("16.9.0.0/24"), geo.Location{Region: geo.Europe, Country: "GB", Lat: 55, Lon: -4})
	db.Add(iptable.MustParsePrefix("16.9.1.0/24"), geo.Location{Region: geo.Asia, Country: "JP", Lat: 35, Lon: 139})
	servers := []packet.Addr{addr(0), addr(1), addr(256), packet.AddrFrom4(99, 0, 0, 1)}

	t1 := ComputeTable1(servers, db)
	if t1.Total != 4 {
		t.Errorf("total = %d", t1.Total)
	}
	counts := map[geo.Region]int{}
	for _, r := range t1.Rows {
		counts[r.Region] = r.Count
	}
	if counts[geo.Europe] != 2 || counts[geo.Asia] != 1 || counts[geo.Unknown] != 1 {
		t.Errorf("counts = %v", counts)
	}

	f1 := ComputeFigure1(servers, db)
	if len(f1.Points) != 4 {
		t.Errorf("points = %d", len(f1.Points))
	}
	out := RenderFigure1(f1)
	if !strings.Contains(out, "Figure 1") {
		t.Error("missing caption")
	}
}

func TestComputeFigure6(t *testing.T) {
	f5 := ComputeFigure5(synthDataset())
	f6 := ComputeFigure6(f5)
	if len(f6.Series) != len(HistoricalECN) {
		t.Error("series truncated")
	}
	if f6.Measured.Pct != f5.NegotiationRate {
		t.Error("measured point mismatch")
	}
	// Trend: our point must extend the rising series.
	last := f6.Series[len(f6.Series)-1]
	if f6.Measured.Pct <= last.Pct {
		t.Errorf("measured %.1f%% does not extend trend beyond %.1f%%", f6.Measured.Pct, last.Pct)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	d := synthDataset()
	f2 := ComputeFigure2a(d)
	f3 := ComputeFigure3a(d)
	f5 := ComputeFigure5(d)
	f6 := ComputeFigure6(f5)
	t2 := ComputeTable2(d)

	outputs := map[string]string{
		"fig2": RenderFigure2(f2, "Figure 2a"),
		"fig3": RenderFigure3(f3, "Figure 3a"),
		"fig5": RenderFigure5(f5),
		"fig6": RenderFigure6(f6),
		"tab2": RenderTable2(t2),
	}
	for name, out := range outputs {
		if len(out) < 40 || !strings.Contains(out, "\n") {
			t.Errorf("%s output suspiciously small: %q", name, out)
		}
	}
	// Figure 2 must contain both vantages.
	if !strings.Contains(outputs["fig2"], "Perkins home") || !strings.Contains(outputs["fig2"], "EC2 Tokyo") {
		t.Error("figure 2 missing vantage rows")
	}
	// Table 2 rows preserve vantage order.
	if strings.Index(outputs["tab2"], "Perkins home") > strings.Index(outputs["tab2"], "EC2 Tokyo") {
		t.Error("table 2 ordering wrong")
	}
}

func TestBarGlyphRange(t *testing.T) {
	if barGlyph(89) != '0' || barGlyph(90) != '0' {
		t.Error("low clamp wrong")
	}
	if barGlyph(100) != '#' || barGlyph(150) != '#' {
		t.Error("high clamp wrong")
	}
	if barGlyph(95.5) != '5' {
		t.Errorf("mid glyph = %c", barGlyph(95.5))
	}
}
