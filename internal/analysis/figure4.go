package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asn"
	"repro/internal/ecn"
	"repro/internal/packet"
	"repro/internal/traceroute"
)

// Figure4 is the traceroute path-transparency analysis of Section 4.2.
type Figure4 struct {
	// Hop observations (the paper's "155439 IP level hops").
	TotalObservations     int
	RespondedObservations int
	PreservedObservations int
	ModifiedObservations  int
	// CEObservations counts quoted CE marks; the paper saw none.
	CEObservations int

	// Strip locations: the first hop on a path where the quoted field
	// differs from what was sent. AlwaysStrip routers stripped on every
	// path observation through them; SometimesStrip flapped (paper: 125).
	StripLocationRouters int
	AlwaysStripRouters   int
	SometimesStrip       int

	// AS attribution of strip locations (paper: 59.1% at boundaries, of
	// those determinable).
	BoundaryStrips     int
	DeterminableStrips int
	BoundaryFraction   float64

	// ASes observed across all responding hops (paper: 1400).
	ASesSeen int

	// SamplePaths renders a handful of paths for the figure.
	SamplePaths []string
}

// ComputeFigure4 reduces traceroute campaign output. The asn table
// attributes strip locations to AS boundaries by comparing the stripping
// router's AS with the previous hop's.
func ComputeFigure4(obs []traceroute.PathObservation, table *asn.Table) Figure4 {
	var f Figure4

	type pathKey struct {
		vantage string
		target  packet.Addr
	}
	// Rebuild per-path hop sequences.
	paths := map[pathKey][]traceroute.PathObservation{}
	for _, o := range obs {
		k := pathKey{o.Vantage, o.Target}
		paths[k] = append(paths[k], o)
	}
	keys := make([]pathKey, 0, len(paths))
	for k := range paths {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].vantage != keys[j].vantage {
			return keys[i].vantage < keys[j].vantage
		}
		return keys[i].target.Less(keys[j].target)
	})

	asSeen := map[asn.ASN]bool{}
	// Per-router strip bookkeeping across paths.
	stripCount := map[packet.Addr]int{}   // times router was a strip location
	throughCount := map[packet.Addr]int{} // times router responded with ECT sent upstream intact
	stripPrevHop := map[packet.Addr]packet.Addr{}

	for _, k := range keys {
		hops := paths[k]
		sort.Slice(hops, func(i, j int) bool {
			if hops[i].TTL != hops[j].TTL {
				return hops[i].TTL < hops[j].TTL
			}
			return hops[i].Attempt < hops[j].Attempt
		})
		var prevResponding packet.Addr
		upstreamIntact := true
		stripSeen := false
		for _, h := range hops {
			f.TotalObservations++
			if !h.Responded {
				continue
			}
			f.RespondedObservations++
			if info, ok := table.Lookup(h.Hop); ok {
				asSeen[info.ASN] = true
			}
			switch h.Transition {
			case ecn.Preserved:
				f.PreservedObservations++
				if upstreamIntact {
					throughCount[h.Hop]++
				}
			case ecn.Marked:
				f.CEObservations++
				f.ModifiedObservations++
			default:
				f.ModifiedObservations++
				if upstreamIntact && !stripSeen {
					// First modified hop on this path: a strip location.
					stripCount[h.Hop]++
					throughCount[h.Hop]++
					if _, ok := stripPrevHop[h.Hop]; !ok && !prevResponding.IsZero() {
						stripPrevHop[h.Hop] = prevResponding
					}
					stripSeen = true
					upstreamIntact = false
				}
			}
			prevResponding = h.Hop
		}
	}
	f.ASesSeen = len(asSeen)

	for router, strips := range stripCount {
		f.StripLocationRouters++
		if strips == throughCount[router] {
			f.AlwaysStripRouters++
		} else {
			f.SometimesStrip++
		}
		prev, havePrev := stripPrevHop[router]
		if !havePrev {
			continue
		}
		boundary, determinable := table.Boundary(prev, router)
		if determinable {
			f.DeterminableStrips++
			if boundary {
				f.BoundaryStrips++
			}
		}
	}
	if f.DeterminableStrips > 0 {
		f.BoundaryFraction = float64(f.BoundaryStrips) / float64(f.DeterminableStrips)
	}

	// Render sample paths: prefer a few containing strips, then clean
	// ones, to echo the paper's mostly-green-with-red-runs figure.
	var withStrip, clean []pathKey
	for _, k := range keys {
		has := false
		for _, h := range paths[k] {
			if h.Responded && h.Transition != ecn.Preserved {
				has = true
				break
			}
		}
		if has {
			withStrip = append(withStrip, k)
		} else {
			clean = append(clean, k)
		}
	}
	sample := append([]pathKey{}, withStrip...)
	if len(sample) > 3 {
		sample = sample[:3]
	}
	for _, k := range clean {
		if len(sample) >= 6 {
			break
		}
		sample = append(sample, k)
	}
	for _, k := range sample {
		f.SamplePaths = append(f.SamplePaths, renderPath(k.vantage, k.target, paths[k]))
	}
	return f
}

// renderPath draws one path as G/R/. glyphs (preserved / modified /
// silent), hop by hop.
func renderPath(vantage string, target packet.Addr, hops []traceroute.PathObservation) string {
	byTTL := map[int]traceroute.PathObservation{}
	maxTTL := 0
	for _, h := range hops {
		if h.Responded {
			if cur, ok := byTTL[h.TTL]; !ok || h.Attempt < cur.Attempt {
				byTTL[h.TTL] = h
			}
			if h.TTL > maxTTL {
				maxTTL = h.TTL
			}
		}
	}
	var glyphs []byte
	for ttl := 1; ttl <= maxTTL; ttl++ {
		h, ok := byTTL[ttl]
		switch {
		case !ok:
			glyphs = append(glyphs, '.')
		case h.Transition == ecn.Preserved:
			glyphs = append(glyphs, 'G')
		default:
			glyphs = append(glyphs, 'R')
		}
	}
	return fmt.Sprintf("%-22s -> %-14s %s", vantage, target, glyphs)
}

// RenderFigure4 prints the summary and sample paths.
func RenderFigure4(f Figure4) string {
	var b strings.Builder
	b.WriteString("Figure 4: traceroute ECN transparency (G=mark intact, R=mark modified, .=silent)\n")
	for _, p := range f.SamplePaths {
		b.WriteString("  " + p + "\n")
	}
	pct := 0.0
	if f.RespondedObservations > 0 {
		pct = 100 * float64(f.PreservedObservations) / float64(f.RespondedObservations)
	}
	b.WriteString(fmt.Sprintf("hop observations: %d (responded %d); ECT(0) preserved at %d (%.2f%%), modified at %d\n",
		f.TotalObservations, f.RespondedObservations, f.PreservedObservations, pct, f.ModifiedObservations))
	b.WriteString(fmt.Sprintf("strip locations: %d routers (%d always, %d sometimes); %.1f%% of determinable strips at AS boundaries (%d/%d)\n",
		f.StripLocationRouters, f.AlwaysStripRouters, f.SometimesStrip,
		100*f.BoundaryFraction, f.BoundaryStrips, f.DeterminableStrips))
	b.WriteString(fmt.Sprintf("ASes observed: %d; ECN-CE marks seen: %d\n", f.ASesSeen, f.CEObservations))
	return b.String()
}
