package middlebox

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/iptable"
	"repro/internal/netsim"
	"repro/internal/packet"
)

var (
	mbSrc = packet.MustParseAddr("192.0.2.1")
	mbDst = packet.MustParseAddr("198.51.100.1")
)

func udpWire(t *testing.T, cp ecn.Codepoint) []byte {
	t.Helper()
	wire, err := packet.BuildUDP(mbSrc, mbDst, 1000, 123, 64, cp, 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func tcpWire(t *testing.T, cp ecn.Codepoint) []byte {
	t.Helper()
	hdr := &packet.TCPHeader{SrcPort: 1000, DstPort: 80, Flags: packet.TCPSyn}
	wire, err := packet.BuildTCP(mbSrc, mbDst, hdr, 64, cp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestECNBleacherAlways(t *testing.T) {
	b := &ECNBleacher{Probability: 1}
	wire := udpWire(t, ecn.ECT0)
	if v := b.Apply(nil, wire); v != netsim.Pass {
		t.Fatal("bleacher must pass packets")
	}
	cp, _ := packet.WireECN(wire)
	if cp != ecn.NotECT {
		t.Errorf("ECN after bleach = %v", cp)
	}
	if _, _, err := packet.ParseIPv4(wire); err != nil {
		t.Errorf("checksum broken after bleach: %v", err)
	}
	if b.Bleached != 1 {
		t.Errorf("Bleached = %d", b.Bleached)
	}
}

func TestECNBleacherIgnoresNotECT(t *testing.T) {
	b := &ECNBleacher{Probability: 1}
	wire := udpWire(t, ecn.NotECT)
	before := append([]byte(nil), wire...)
	b.Apply(nil, wire)
	for i := range wire {
		if wire[i] != before[i] {
			t.Fatal("bleacher modified a not-ECT packet")
		}
	}
	if b.Bleached != 0 {
		t.Error("counted a bleach that did not happen")
	}
}

func TestECNBleacherBleachesCE(t *testing.T) {
	b := &ECNBleacher{Probability: 1}
	wire := udpWire(t, ecn.CE)
	b.Apply(nil, wire)
	cp, _ := packet.WireECN(wire)
	if cp != ecn.NotECT {
		t.Errorf("CE survived bleaching: %v", cp)
	}
}

func TestECNBleacherProbabilistic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := &ECNBleacher{Probability: 0.3, RNG: rng}
	n := 5000
	for i := 0; i < n; i++ {
		b.Apply(nil, udpWire(t, ecn.ECT0))
	}
	got := float64(b.Bleached) / float64(n)
	if got < 0.25 || got > 0.35 {
		t.Errorf("bleach rate = %.3f, want ~0.30", got)
	}
}

func TestECNBleacherNoRNGNeverFires(t *testing.T) {
	b := &ECNBleacher{Probability: 0.5} // nil RNG
	wire := udpWire(t, ecn.ECT0)
	b.Apply(nil, wire)
	cp, _ := packet.WireECN(wire)
	if cp != ecn.ECT0 {
		t.Error("probabilistic bleacher without RNG must not fire")
	}
}

func TestECTUDPDropper(t *testing.T) {
	d := &ECTUDPDropper{}
	cases := []struct {
		wire []byte
		want netsim.Verdict
	}{
		{udpWire(t, ecn.ECT0), netsim.Drop},
		{udpWire(t, ecn.ECT1), netsim.Drop},
		{udpWire(t, ecn.CE), netsim.Drop},
		{udpWire(t, ecn.NotECT), netsim.Pass},
		{tcpWire(t, ecn.ECT0), netsim.Pass}, // TCP always passes
		{tcpWire(t, ecn.NotECT), netsim.Pass},
	}
	for i, c := range cases {
		if got := d.Apply(nil, c.wire); got != c.want {
			t.Errorf("case %d: verdict = %v, want %v", i, got, c.want)
		}
	}
	if d.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", d.Dropped)
	}
}

func TestNotECTUDPDropper(t *testing.T) {
	d := &NotECTUDPDropper{}
	if d.Apply(nil, udpWire(t, ecn.NotECT)) != netsim.Drop {
		t.Error("not-ECT UDP should drop")
	}
	if d.Apply(nil, udpWire(t, ecn.ECT0)) != netsim.Pass {
		t.Error("ECT(0) UDP should pass")
	}
	if d.Apply(nil, tcpWire(t, ecn.NotECT)) != netsim.Pass {
		t.Error("TCP should pass")
	}
}

func TestECTAnyDropper(t *testing.T) {
	d := &ECTAnyDropper{}
	if d.Apply(nil, tcpWire(t, ecn.ECT0)) != netsim.Drop {
		t.Error("ECT TCP should drop under drop-ect-any")
	}
	if d.Apply(nil, udpWire(t, ecn.NotECT)) != netsim.Pass {
		t.Error("not-ECT should pass")
	}
}

func TestCEMarker(t *testing.T) {
	m := &CEMarker{Probability: 1}
	wire := udpWire(t, ecn.ECT0)
	m.Apply(nil, wire)
	cp, _ := packet.WireECN(wire)
	if cp != ecn.CE {
		t.Errorf("ECN = %v, want CE", cp)
	}
	// CE input is left alone (already marked).
	m2 := &CEMarker{Probability: 1}
	ceWire := udpWire(t, ecn.CE)
	m2.Apply(nil, ceWire)
	if m2.Marked != 0 {
		t.Error("re-marked an already-CE packet")
	}
	// not-ECT must never be marked (RFC 3168 forbids it).
	notECT := udpWire(t, ecn.NotECT)
	m.Apply(nil, notECT)
	cp, _ = packet.WireECN(notECT)
	if cp != ecn.NotECT {
		t.Error("marked a not-ECT packet")
	}
}

func TestScopedBySource(t *testing.T) {
	inner := &ECTUDPDropper{}
	scoped := &ScopedBySource{
		Prefixes: []iptable.Prefix{iptable.MustParsePrefix("192.0.2.0/24")},
		Inner:    inner,
	}
	// mbSrc is 192.0.2.1 — inside the scope: dropped.
	if scoped.Apply(nil, udpWire(t, ecn.ECT0)) != netsim.Drop {
		t.Error("in-scope source not dropped")
	}
	// Build a packet from an out-of-scope source.
	out, err := packet.BuildUDP(
		packet.MustParseAddr("203.0.113.1"), mbDst, 1000, 123, 64, ecn.ECT0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scoped.Apply(nil, out) != netsim.Pass {
		t.Error("out-of-scope source dropped")
	}
	if scoped.Name() == "" {
		t.Error("empty name")
	}
	scoped.Apply(nil, []byte{1}) // short wire must not panic
}

func TestScopedByDest(t *testing.T) {
	inner := &NotECTUDPDropper{}
	scoped := &ScopedByDest{
		Prefixes: []iptable.Prefix{iptable.MakePrefix(mbDst, 32)},
		Inner:    inner,
	}
	// Toward the protected host: inner policy applies.
	if scoped.Apply(nil, udpWire(t, ecn.NotECT)) != netsim.Drop {
		t.Error("inbound not-ECT UDP not dropped")
	}
	// Reply direction (source = protected host): must pass — this is
	// the asymmetry that keeps Figure 3b's servers alive via ECT(0).
	reply, err := packet.BuildUDP(mbDst, mbSrc, 123, 1000, 64, ecn.NotECT, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scoped.Apply(nil, reply) != netsim.Pass {
		t.Error("outbound reply dropped by site firewall")
	}
	if scoped.Name() == "" {
		t.Error("empty name")
	}
	scoped.Apply(nil, []byte{1}) // short wire must not panic
}

func TestPolicyNames(t *testing.T) {
	policies := []netsim.Policy{
		&ECNBleacher{}, &ECTUDPDropper{}, &NotECTUDPDropper{},
		&ECTAnyDropper{}, &CEMarker{},
	}
	seen := map[string]bool{}
	for _, p := range policies {
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("policy name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}

func TestShortWireSafe(t *testing.T) {
	short := []byte{0x45, 0x00}
	for _, p := range []netsim.Policy{
		&ECNBleacher{Probability: 1}, &ECTUDPDropper{},
		&NotECTUDPDropper{}, &ECTAnyDropper{}, &CEMarker{Probability: 1},
	} {
		p.Apply(nil, short) // must not panic
		p.Apply(nil, nil)
	}
}

// Integration: an ECT-UDP firewall one hop before the destination blocks
// ECT(0) NTP probes but passes not-ECT ones — the exact mechanism behind
// Figure 3a's spikes.
func TestFirewallBlocksECTUDPEndToEnd(t *testing.T) {
	sim := netsim.NewSim(3)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, time.Millisecond, 0)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r1, time.Millisecond, 0)
	n.Attach(server, r2, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	r2.AddPolicy(&ECTUDPDropper{})

	var gotNotECT, gotECT bool
	server.BindUDP(123, func(h *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		if ip.ECN().IsECT() {
			gotECT = true
		} else {
			gotNotECT = true
		}
	})
	client.SendUDP(server.Addr(), 5000, 123, 64, ecn.NotECT, []byte("a"))
	client.SendUDP(server.Addr(), 5000, 123, 64, ecn.ECT0, []byte("b"))
	sim.Run()

	if !gotNotECT {
		t.Error("not-ECT probe blocked")
	}
	if gotECT {
		t.Error("ECT(0) probe passed the firewall")
	}
}
