// Package middlebox implements the on-path behaviours that the study set
// out to measure: firewalls and other boxes that treat ECN-marked UDP
// traffic as suspicious, and routers that bleach the ECN field of transit
// packets.
//
// Each behaviour is a netsim.Policy working directly on wire bytes, so a
// policy's effect (including the repaired IPv4 header checksum) is exactly
// what a downstream capture or ICMP quotation observes. The topology
// package decides where these boxes sit; this package only defines what
// they do.
package middlebox

import (
	"math/rand"

	"repro/internal/ecn"
	"repro/internal/iptable"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// ECNBleacher resets the ECN field of ECT-marked packets to not-ECT,
// modelling routers or policers that zero the former TOS byte. The study
// found 1143 hops doing this persistently and 125 doing it sometimes;
// Probability below 1 models the latter ("route flaps or rate-dependent
// remarking").
type ECNBleacher struct {
	// Probability of bleaching each ECT packet. 1 = always.
	Probability float64
	// RNG used for sometimes-bleachers; must be the simulation's RNG so
	// runs stay reproducible. May be nil when Probability >= 1.
	RNG *rand.Rand

	Bleached uint64 // packets whose mark was removed
}

// Name implements netsim.Policy.
func (b *ECNBleacher) Name() string { return "ecn-bleach" }

// Apply implements netsim.Policy.
func (b *ECNBleacher) Apply(_ *netsim.Router, wire []byte) netsim.Verdict {
	cp, err := packet.WireECN(wire)
	if err != nil || !cp.IsECT() {
		return netsim.Pass
	}
	if b.Probability < 1 {
		if b.RNG == nil || b.RNG.Float64() >= b.Probability {
			return netsim.Pass
		}
	}
	if packet.SetWireECN(wire, ecn.NotECT) == nil {
		b.Bleached++
	}
	return netsim.Pass
}

// ECTUDPDropper silently discards UDP packets that carry any ECT mark —
// the firewall behaviour responsible for the paper's persistent
// differential-reachability spikes (Figure 3a). TCP is unaffected, which
// produces the weak UDP/TCP correlation of Table 2.
type ECTUDPDropper struct {
	Dropped uint64
}

// Name implements netsim.Policy.
func (d *ECTUDPDropper) Name() string { return "drop-ect-udp" }

// Apply implements netsim.Policy.
func (d *ECTUDPDropper) Apply(_ *netsim.Router, wire []byte) netsim.Verdict {
	if len(wire) < packet.IPv4HeaderLen {
		return netsim.Pass
	}
	cp, err := packet.WireECN(wire)
	if err != nil || !cp.IsECT() {
		return netsim.Pass
	}
	if packet.Protocol(wire[9]) != packet.ProtoUDP {
		return netsim.Pass
	}
	d.Dropped++
	return netsim.Drop
}

// NotECTUDPDropper drops UDP packets that are NOT ECT-marked. The paper
// observed a tiny number of servers reachable with ECT(0) but not with
// not-ECT packets (Figure 3b) — consistent with a TOS-whitelisting
// middlebox — and left the cause open. The behaviour is modelled so the
// converse analysis has real signal to find.
type NotECTUDPDropper struct {
	Dropped uint64
}

// Name implements netsim.Policy.
func (d *NotECTUDPDropper) Name() string { return "drop-notect-udp" }

// Apply implements netsim.Policy.
func (d *NotECTUDPDropper) Apply(_ *netsim.Router, wire []byte) netsim.Verdict {
	if len(wire) < packet.IPv4HeaderLen {
		return netsim.Pass
	}
	cp, err := packet.WireECN(wire)
	if err != nil || cp.IsECT() {
		return netsim.Pass
	}
	if packet.Protocol(wire[9]) != packet.ProtoUDP {
		return netsim.Pass
	}
	d.Dropped++
	return netsim.Drop
}

// ECTAnyDropper drops every ECT-marked IP packet regardless of transport:
// the most aggressive middlebox the literature describes. Not placed in
// the default topology but exercised by failure-injection tests and the
// ablation benchmarks.
type ECTAnyDropper struct {
	Dropped uint64
}

// Name implements netsim.Policy.
func (d *ECTAnyDropper) Name() string { return "drop-ect-any" }

// Apply implements netsim.Policy.
func (d *ECTAnyDropper) Apply(_ *netsim.Router, wire []byte) netsim.Verdict {
	cp, err := packet.WireECN(wire)
	if err != nil || !cp.IsECT() {
		return netsim.Pass
	}
	d.Dropped++
	return netsim.Drop
}

// ScopedBySource applies an inner policy only to packets whose source
// address falls inside one of the given prefixes. The paper observed two
// pool servers (run by Phoenix Public Library) whose reachability anomaly
// appeared "in the traces taken from EC2 only" — behaviour consistent
// with a middlebox that treats some source networks differently. This
// wrapper models exactly that.
type ScopedBySource struct {
	Prefixes []iptable.Prefix
	Inner    netsim.Policy
}

// Name implements netsim.Policy.
func (s *ScopedBySource) Name() string { return "src-scoped(" + s.Inner.Name() + ")" }

// Apply implements netsim.Policy.
func (s *ScopedBySource) Apply(r *netsim.Router, wire []byte) netsim.Verdict {
	if len(wire) < packet.IPv4HeaderLen {
		return netsim.Pass
	}
	var src packet.Addr
	copy(src[:], wire[12:16])
	for _, p := range s.Prefixes {
		if p.Contains(src) {
			return s.Inner.Apply(r, wire)
		}
	}
	return netsim.Pass
}

// ScopedByDest applies an inner policy only to packets destined to one
// of the given prefixes. Site firewalls filter traffic *toward* the
// hosts they protect; without this scoping a drop-not-ECT firewall would
// also eat the protected server's own (not-ECT) replies on their way
// out, making the server dead in both directions instead of exhibiting
// the paper's Figure 3b asymmetry.
type ScopedByDest struct {
	Prefixes []iptable.Prefix
	Inner    netsim.Policy
}

// Name implements netsim.Policy.
func (s *ScopedByDest) Name() string { return "dst-scoped(" + s.Inner.Name() + ")" }

// Apply implements netsim.Policy.
func (s *ScopedByDest) Apply(r *netsim.Router, wire []byte) netsim.Verdict {
	if len(wire) < packet.IPv4HeaderLen {
		return netsim.Pass
	}
	var dst packet.Addr
	copy(dst[:], wire[16:20])
	for _, p := range s.Prefixes {
		if p.Contains(dst) {
			return s.Inner.Apply(r, wire)
		}
	}
	return netsim.Pass
}

// CEMarker rewrites ECT packets to CE with the given probability: a
// congested AQM doing genuine ECN marking. The study saw no CE at all on
// its paths; the default topology therefore places none, but the marker
// exists for the "what would CE look like" extension benchmarks and for
// testing that the analysis classifies Marked transitions separately
// from Bleached ones.
type CEMarker struct {
	Probability float64
	RNG         *rand.Rand

	Marked uint64
}

// Name implements netsim.Policy.
func (m *CEMarker) Name() string { return "ce-mark" }

// Apply implements netsim.Policy.
func (m *CEMarker) Apply(_ *netsim.Router, wire []byte) netsim.Verdict {
	cp, err := packet.WireECN(wire)
	if err != nil || !cp.IsECT() || cp == ecn.CE {
		return netsim.Pass
	}
	if m.Probability < 1 {
		if m.RNG == nil || m.RNG.Float64() >= m.Probability {
			return netsim.Pass
		}
	}
	if packet.SetWireECN(wire, ecn.CE) == nil {
		m.Marked++
	}
	return netsim.Pass
}
