package ecn_test

import (
	"fmt"

	"repro/internal/ecn"
)

// The TOS-byte algebra: set and read ECN codepoints without touching
// the DSCP bits.
func ExampleSetTOS() {
	tos := uint8(0b1011_1000) // DSCP EF, no ECN
	tos = ecn.SetTOS(tos, ecn.ECT0)
	fmt.Printf("tos=%#08b ecn=%s\n", tos, ecn.FromTOS(tos))
	// Output: tos=0b10111010 ecn=ECT(0)
}

// Classifying what a middlebox did to a packet's ECN field — the unit
// of the paper's Section 4.2 analysis.
func ExampleClassify() {
	fmt.Println(ecn.Classify(ecn.ECT0, ecn.ECT0))
	fmt.Println(ecn.Classify(ecn.ECT0, ecn.NotECT))
	fmt.Println(ecn.Classify(ecn.ECT0, ecn.CE))
	fmt.Println(ecn.Classify(ecn.NotECT, ecn.ECT1))
	// Output:
	// preserved
	// bleached
	// CE-marked
	// mangled
}
