// Package ecn defines the Explicit Congestion Notification codepoints
// carried in the two least-significant bits of the IPv4 traffic-class
// (TOS) byte, together with helpers for reading, writing and classifying
// them as RFC 3168 specifies.
//
// The package is the shared vocabulary of the whole repository: the packet
// codecs, the simulated routers and middleboxes, the traceroute analyser
// and the measurement engine all exchange Codepoint values rather than raw
// TOS bytes.
package ecn

import "fmt"

// Codepoint is a two-bit ECN field value as defined by RFC 3168 §5.
type Codepoint uint8

// The four ECN codepoints. ECT(0) and ECT(1) are equivalent signals of an
// ECN-capable transport; CE is set by a congested router on an ECT packet.
const (
	NotECT Codepoint = 0b00 // not ECN-capable transport
	ECT1   Codepoint = 0b01 // ECN-capable transport, codepoint 1
	ECT0   Codepoint = 0b10 // ECN-capable transport, codepoint 0
	CE     Codepoint = 0b11 // congestion experienced
)

// Mask covers the two ECN bits within a TOS/traffic-class byte.
const Mask = 0b11

// FromTOS extracts the ECN codepoint from an IPv4 TOS byte.
func FromTOS(tos uint8) Codepoint { return Codepoint(tos & Mask) }

// SetTOS returns tos with its ECN bits replaced by c, leaving the DSCP
// bits (the upper six) untouched.
func SetTOS(tos uint8, c Codepoint) uint8 {
	return (tos &^ Mask) | uint8(c&Mask)
}

// IsECT reports whether the codepoint declares an ECN-capable transport,
// i.e. it is ECT(0), ECT(1) or CE. RFC 3168 treats a CE mark as implying
// the packet was ECT when it entered the congested queue.
func (c Codepoint) IsECT() bool { return c != NotECT }

// Valid reports whether c is one of the four defined codepoints.
func (c Codepoint) Valid() bool { return c <= CE }

// String returns the conventional name used in the measurement literature.
func (c Codepoint) String() string {
	switch c {
	case NotECT:
		return "not-ECT"
	case ECT1:
		return "ECT(1)"
	case ECT0:
		return "ECT(0)"
	case CE:
		return "ECN-CE"
	default:
		return fmt.Sprintf("ECN(%#02b?)", uint8(c))
	}
}

// Transition classifies what happened to the ECN field of a packet between
// two observation points on a path. It is the unit of analysis for the
// paper's Section 4.2 (are ECN marks stripped from UDP?).
type Transition uint8

// Transition kinds, from benign to pathological.
const (
	// Preserved: the field arrived exactly as sent.
	Preserved Transition = iota
	// Bleached: an ECT mark was reset to not-ECT. This is the only
	// modification the paper observed in the wild.
	Bleached
	// Marked: an ECT codepoint was rewritten to CE — legitimate router
	// congestion signalling.
	Marked
	// Mangled: any other rewrite (not-ECT→ECT, CE→ECT, ECT(0)↔ECT(1), …),
	// indicating a broken middlebox.
	Mangled
)

// String names the transition for reports.
func (t Transition) String() string {
	switch t {
	case Preserved:
		return "preserved"
	case Bleached:
		return "bleached"
	case Marked:
		return "CE-marked"
	case Mangled:
		return "mangled"
	default:
		return fmt.Sprintf("transition(%d)", uint8(t))
	}
}

// Classify returns the Transition from the codepoint sent to the codepoint
// later observed.
func Classify(sent, observed Codepoint) Transition {
	switch {
	case sent == observed:
		return Preserved
	case sent.IsECT() && observed == NotECT:
		return Bleached
	case (sent == ECT0 || sent == ECT1) && observed == CE:
		return Marked
	default:
		return Mangled
	}
}
