package ecn

import (
	"testing"
	"testing/quick"
)

func TestFromTOS(t *testing.T) {
	cases := []struct {
		tos  uint8
		want Codepoint
	}{
		{0x00, NotECT},
		{0x01, ECT1},
		{0x02, ECT0},
		{0x03, CE},
		{0xFC, NotECT}, // DSCP EF, no ECN
		{0xFE, ECT0},
		{0xFF, CE},
		{0b10101001, ECT1},
	}
	for _, c := range cases {
		if got := FromTOS(c.tos); got != c.want {
			t.Errorf("FromTOS(%#02x) = %v, want %v", c.tos, got, c.want)
		}
	}
}

func TestSetTOSPreservesDSCP(t *testing.T) {
	for tos := 0; tos < 256; tos++ {
		for cp := Codepoint(0); cp <= CE; cp++ {
			got := SetTOS(uint8(tos), cp)
			if got&Mask != uint8(cp) {
				t.Fatalf("SetTOS(%#02x, %v): ECN bits = %#02b", tos, cp, got&Mask)
			}
			if got&^Mask != uint8(tos)&^Mask {
				t.Fatalf("SetTOS(%#02x, %v) changed DSCP: got %#02x", tos, cp, got)
			}
		}
	}
}

func TestSetTOSRoundTrip(t *testing.T) {
	f := func(tos uint8, raw uint8) bool {
		cp := Codepoint(raw & Mask)
		return FromTOS(SetTOS(tos, cp)) == cp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsECT(t *testing.T) {
	if NotECT.IsECT() {
		t.Error("not-ECT must not be ECT")
	}
	for _, c := range []Codepoint{ECT0, ECT1, CE} {
		if !c.IsECT() {
			t.Errorf("%v must be ECT", c)
		}
	}
}

func TestValid(t *testing.T) {
	for c := Codepoint(0); c <= CE; c++ {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	if Codepoint(4).Valid() {
		t.Error("codepoint 4 should be invalid")
	}
}

func TestStringNames(t *testing.T) {
	want := map[Codepoint]string{
		NotECT: "not-ECT",
		ECT1:   "ECT(1)",
		ECT0:   "ECT(0)",
		CE:     "ECN-CE",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Codepoint(9).String() == "" {
		t.Error("out-of-range codepoint should still stringify")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sent, obs Codepoint
		want      Transition
	}{
		{ECT0, ECT0, Preserved},
		{NotECT, NotECT, Preserved},
		{CE, CE, Preserved},
		{ECT0, NotECT, Bleached},
		{ECT1, NotECT, Bleached},
		{CE, NotECT, Bleached}, // CE implies ECT; resetting it is bleaching
		{ECT0, CE, Marked},
		{ECT1, CE, Marked},
		{NotECT, ECT0, Mangled},
		{NotECT, CE, Mangled},
		{ECT0, ECT1, Mangled},
		{ECT1, ECT0, Mangled},
		{CE, ECT0, Mangled},
	}
	for _, c := range cases {
		if got := Classify(c.sent, c.obs); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.sent, c.obs, got, c.want)
		}
	}
}

// Property: Classify is Preserved iff sent == observed.
func TestClassifyPreservedIff(t *testing.T) {
	f := func(a, b uint8) bool {
		s, o := Codepoint(a&Mask), Codepoint(b&Mask)
		return (Classify(s, o) == Preserved) == (s == o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransitionString(t *testing.T) {
	for tr := Preserved; tr <= Mangled; tr++ {
		if tr.String() == "" {
			t.Errorf("transition %d has empty name", tr)
		}
	}
	if Transition(200).String() == "" {
		t.Error("unknown transition should still stringify")
	}
}
