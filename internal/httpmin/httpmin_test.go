package httpmin

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/tcpsim"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method:  "GET",
		Path:    "/",
		Headers: map[string]string{"Host": "192.0.2.1", "Connection": "close"},
	}
	wire := req.Marshal()
	if !strings.HasPrefix(string(wire), "GET / HTTP/1.1\r\n") {
		t.Errorf("request line wrong: %q", wire[:20])
	}
	got, err := ParseRequest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != "/" || got.Headers["Host"] != "192.0.2.1" {
		t.Errorf("parsed = %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		StatusCode: 302,
		Headers:    map[string]string{"Location": RedirectTarget},
		Body:       []byte("moved"),
	}
	wire := resp.Marshal()
	got, err := ParseResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 302 || got.Headers["Location"] != RedirectTarget {
		t.Errorf("parsed = %+v", got)
	}
	if string(got.Body) != "moved" {
		t.Errorf("body = %q", got.Body)
	}
	if got.Headers["Content-Length"] != "5" {
		t.Errorf("content-length = %q", got.Headers["Content-Length"])
	}
}

func TestParseIncomplete(t *testing.T) {
	resp := &Response{StatusCode: 200, Body: []byte("hello world")}
	wire := resp.Marshal()
	for cut := 1; cut < len(wire); cut++ {
		_, err := ParseResponse(wire[:cut])
		if err == nil {
			t.Fatalf("truncation at %d parsed fully", cut)
		}
		if !errors.Is(err, ErrIncomplete) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("unexpected error at %d: %v", cut, err)
		}
	}
	// Specifically: complete headers, partial body → incomplete.
	head := bytes.Index(wire, []byte("\r\n\r\n"))
	if _, err := ParseResponse(wire[:head+6]); !errors.Is(err, ErrIncomplete) {
		t.Errorf("partial body: %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"NOT-HTTP\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nBadHeader\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: x\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ParseResponse([]byte(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseResponse(%q) = %v, want malformed", c, err)
		}
	}
	if _, err := ParseRequest([]byte("GARBAGE LINE\r\n\r\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad request line: %v", err)
	}
}

func TestHeaderCanonicalisation(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\ncontent-length: 0\r\nLOCATION: x\r\n\r\n"
	got, err := ParseResponse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Headers["Content-Length"] != "0" || got.Headers["Location"] != "x" {
		t.Errorf("headers = %v", got.Headers)
	}
}

func TestPoolHandler(t *testing.T) {
	resp := PoolHandler(&Request{Method: "GET", Path: "/"})
	if resp.StatusCode != 302 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if resp.Headers["Location"] != RedirectTarget {
		t.Errorf("location = %q", resp.Headers["Location"])
	}
}

// --- over the simulated network -----------------------------------------

type httpFixture struct {
	sim            *netsim.Sim
	client, server *netsim.Host
	cs, ss         *tcpsim.Stack
}

func newHTTPFixture(t *testing.T, seed int64) *httpFixture {
	t.Helper()
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 64500)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r, time.Millisecond, 0)
	n.Attach(server, r, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return &httpFixture{sim: sim, client: client, server: server,
		cs: tcpsim.NewStack(client), ss: tcpsim.NewStack(server)}
}

func TestGetAgainstPoolServer(t *testing.T) {
	f := newHTTPFixture(t, 1)
	if _, err := Serve(f.ss, Port, true, PoolHandler); err != nil {
		t.Fatal(err)
	}
	var got GetResult
	Get(f.cs, f.server.Addr(), Port, "/", false, func(r GetResult) { got = r })
	f.sim.Run()

	if got.Err != nil {
		t.Fatalf("GET failed: %v", got.Err)
	}
	if got.Response.StatusCode != 302 {
		t.Errorf("status = %d", got.Response.StatusCode)
	}
	if got.ECNNegotiated {
		t.Error("ECN negotiated without request")
	}
}

func TestGetWithECN(t *testing.T) {
	f := newHTTPFixture(t, 2)
	Serve(f.ss, Port, true, PoolHandler)
	var got GetResult
	Get(f.cs, f.server.Addr(), Port, "/", true, func(r GetResult) { got = r })
	f.sim.Run()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if !got.ECNNegotiated {
		t.Error("ECN-capable server did not negotiate")
	}
	if got.Response == nil || got.Response.StatusCode != 302 {
		t.Error("no valid response over ECN connection")
	}
}

func TestGetECNRefusedStillWorks(t *testing.T) {
	f := newHTTPFixture(t, 3)
	Serve(f.ss, Port, false, PoolHandler) // web server, ECN-unwilling
	var got GetResult
	Get(f.cs, f.server.Addr(), Port, "/", true, func(r GetResult) { got = r })
	f.sim.Run()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.ECNNegotiated {
		t.Error("negotiated with unwilling server")
	}
	if got.Response.StatusCode != 302 {
		t.Error("HTTP failed despite ECN refusal")
	}
}

func TestGetNoWebServer(t *testing.T) {
	f := newHTTPFixture(t, 4)
	var got GetResult
	Get(f.cs, f.server.Addr(), Port, "/", false, func(r GetResult) { got = r })
	f.sim.Run()
	if !errors.Is(got.Err, tcpsim.ErrRefused) {
		t.Errorf("err = %v, want refused", got.Err)
	}
}

func TestGetOfflineHost(t *testing.T) {
	f := newHTTPFixture(t, 5)
	f.server.SetOnline(false)
	var got GetResult
	Get(f.cs, f.server.Addr(), Port, "/", false, func(r GetResult) { got = r })
	f.sim.Run()
	if !errors.Is(got.Err, tcpsim.ErrTimeout) {
		t.Errorf("err = %v, want timeout", got.Err)
	}
}

func TestGetUnderLoss(t *testing.T) {
	f := newHTTPFixture(t, 6)
	Serve(f.ss, Port, true, PoolHandler)
	f.client.Uplink().SetLossBoth(0.25)
	success := 0
	const tries = 20
	var run func(i int)
	run = func(i int) {
		if i == tries {
			return
		}
		Get(f.cs, f.server.Addr(), Port, "/", true, func(r GetResult) {
			if r.Err == nil && r.Response != nil && r.Response.StatusCode == 302 {
				success++
			}
			run(i + 1)
		})
	}
	run(0)
	f.sim.Run()
	// TCP retransmission conceals most loss ("TCP retransmits conceal
	// the impact of packet loss" — §4.3). Expect high success.
	if success < tries*3/4 {
		t.Errorf("only %d/%d GETs succeeded under 25%% loss", success, tries)
	}
}

func TestLargeResponseBody(t *testing.T) {
	f := newHTTPFixture(t, 7)
	big := bytes.Repeat([]byte("x"), 5000) // multiple segments
	Serve(f.ss, Port, false, func(req *Request) *Response {
		return &Response{StatusCode: 200, Body: big}
	})
	var got GetResult
	Get(f.cs, f.server.Addr(), Port, "/big", false, func(r GetResult) { got = r })
	f.sim.Run()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if !bytes.Equal(got.Response.Body, big) {
		t.Errorf("body = %d bytes, want %d", len(got.Response.Body), len(big))
	}
}
