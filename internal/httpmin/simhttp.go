package httpmin

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/tcpsim"
)

// Port is the well-known HTTP port.
const Port = 80

// Handler computes a response for a request.
type Handler func(*Request) *Response

// Serve attaches an HTTP server to a TCP stack and returns its listener
// (whose ECN/BrokenECE knobs model the server-side properties the
// paper's Section 4.3 and the Kühlewind usability extension measure).
func Serve(stack *tcpsim.Stack, port uint16, ecnCapable bool, handler Handler) (*tcpsim.Listener, error) {
	l, err := stack.Listen(port, ecnCapable, func(c *tcpsim.Conn) {
		var buf []byte
		c.OnData(func(b []byte) {
			buf = append(buf, b...)
			req, err := ParseRequest(buf)
			if err == ErrIncomplete {
				return
			}
			if err != nil {
				c.Abort()
				return
			}
			buf = nil
			resp := handler(req)
			c.Write(resp.Marshal())
			c.Close() // Connection: close semantics, as pool hosts use
		})
	})
	return l, err
}

// GetResult is the outcome of an HTTP probe.
type GetResult struct {
	// Err is nil when an HTTP response was received. ErrRefused /
	// ErrTimeout from tcpsim indicate no web server / dead host.
	Err error
	// Response is the parsed response when Err is nil.
	Response *Response
	// ECNRequested and ECNNegotiated record the TCP-level ECN handshake
	// outcome (the paper's "ECN-setup SYN-ACK received" test).
	ECNRequested  bool
	ECNNegotiated bool
	// ECESeen counts ECE-flagged segments received — non-zero means the
	// peer echoed congestion for our CE-marked probe segments (the
	// usability criterion of the Kühlewind extension).
	ECESeen uint64
	// Elapsed is the virtual time from SYN to response.
	Elapsed time.Duration
}

// GetTimeout bounds an entire Get exchange. A probe tool needs its own
// deadline: a peer that completes the handshake but dies mid-response
// tears down silently on its side, and without an application timeout
// the client would wait forever.
const GetTimeout = 90 * time.Second

// GetConfig controls an HTTP probe beyond the plain/ECN split.
type GetConfig struct {
	// RequestECN sends an ECN-setup SYN.
	RequestECN bool
	// MarkCE sends the request's data segments CE-marked on a
	// negotiated connection (Kühlewind-style usability probe). The
	// GetResult's ECESeen reports whether the server echoed congestion.
	MarkCE bool
}

// Get issues "GET path" to dst:port from the given stack, optionally
// requesting ECN on the connection, and invokes done exactly once.
func Get(stack *tcpsim.Stack, dst packet.Addr, port uint16, path string, requestECN bool, done func(GetResult)) {
	GetWithConfig(stack, dst, port, path, GetConfig{RequestECN: requestECN}, done)
}

// GetWithConfig is Get with full probe control.
func GetWithConfig(stack *tcpsim.Stack, dst packet.Addr, port uint16, path string, gcfg GetConfig, done func(GetResult)) {
	requestECN := gcfg.RequestECN
	sim := stack.Host().Sim()
	start := sim.Now()
	res := GetResult{ECNRequested: requestECN}
	finished := false
	var conn *tcpsim.Conn
	var deadline *netsim.Timer
	finish := func() {
		if !finished {
			finished = true
			if deadline != nil {
				deadline.Stop()
			}
			if conn != nil {
				res.ECESeen = conn.ECESeen
			}
			res.Elapsed = sim.Now() - start
			done(res)
		}
	}
	deadline = sim.After(GetTimeout, func() {
		if finished {
			return
		}
		res.Err = tcpsim.ErrTimeout
		finish()
		if conn != nil {
			conn.Abort()
		}
		// A dial still in flight cleans itself up via its SYN timer.
	})

	stack.Dial(dst, port, tcpsim.DialConfig{RequestECN: requestECN, MarkCE: gcfg.MarkCE}, func(c *tcpsim.Conn, err error) {
		if finished {
			if c != nil {
				c.Abort() // deadline already fired; drop the late connection
			}
			return
		}
		if err != nil {
			res.Err = err
			finish()
			return
		}
		conn = c
		res.ECNNegotiated = c.ECNNegotiated()
		var buf []byte
		c.OnData(func(b []byte) {
			buf = append(buf, b...)
			resp, perr := ParseResponse(buf)
			if perr == ErrIncomplete {
				return
			}
			if perr != nil {
				res.Err = perr
				c.Abort()
				finish()
				return
			}
			res.Response = resp
			finish()
			c.Close()
		})
		c.OnClose(func(cerr error) {
			if res.Response == nil && res.Err == nil {
				if cerr == nil {
					cerr = tcpsim.ErrClosed
				}
				res.Err = cerr
			}
			finish()
		})
		req := Request{
			Method: "GET",
			Path:   path,
			Headers: map[string]string{
				"Host":       dst.String(),
				"User-Agent": "ecnspider/1.0",
				"Connection": "close",
			},
		}
		c.Write(req.Marshal())
	})
}
