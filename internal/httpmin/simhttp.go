package httpmin

import (
	"strconv"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/tcpsim"
)

// Port is the well-known HTTP port.
const Port = 80

// Handler computes a response for a request.
type Handler func(*Request) *Response

// Serve attaches an HTTP server to a TCP stack and returns its listener
// (whose ECN/BrokenECE knobs model the server-side properties the
// paper's Section 4.3 and the Kühlewind usability extension measure).
func Serve(stack *tcpsim.Stack, port uint16, ecnCapable bool, handler Handler) (*tcpsim.Listener, error) {
	l, err := stack.Listen(port, ecnCapable, func(c *tcpsim.Conn) {
		var buf []byte
		c.OnData(func(b []byte) {
			buf = append(buf, b...)
			req, err := ParseRequest(buf)
			if err == ErrIncomplete {
				return
			}
			if err != nil {
				c.Abort()
				return
			}
			buf = nil
			resp := handler(req)
			c.Write(resp.Marshal())
			c.Close() // Connection: close semantics, as pool hosts use
		})
	})
	return l, err
}

// GetResult is the outcome of an HTTP probe.
type GetResult struct {
	// Err is nil when an HTTP response was received. ErrRefused /
	// ErrTimeout from tcpsim indicate no web server / dead host.
	Err error
	// Response is the parsed response when Err is nil.
	Response *Response
	// ECNRequested and ECNNegotiated record the TCP-level ECN handshake
	// outcome (the paper's "ECN-setup SYN-ACK received" test).
	ECNRequested  bool
	ECNNegotiated bool
	// ECESeen counts ECE-flagged segments received — non-zero means the
	// peer echoed congestion for our CE-marked probe segments (the
	// usability criterion of the Kühlewind extension).
	ECESeen uint64
	// Elapsed is the virtual time from SYN to response.
	Elapsed time.Duration
}

// GetTimeout bounds an entire Get exchange. A probe tool needs its own
// deadline: a peer that completes the handshake but dies mid-response
// tears down silently on its side, and without an application timeout
// the client would wait forever.
const GetTimeout = 90 * time.Second

// GetConfig controls an HTTP probe beyond the plain/ECN split.
type GetConfig struct {
	// RequestECN sends an ECN-setup SYN.
	RequestECN bool
	// MarkCE sends the request's data segments CE-marked on a
	// negotiated connection (Kühlewind-style usability probe). The
	// GetResult's ECESeen reports whether the server echoed congestion.
	MarkCE bool
}

// Get issues "GET path" to dst:port from the given stack, optionally
// requesting ECN on the connection, and invokes done exactly once.
func Get(stack *tcpsim.Stack, dst packet.Addr, port uint16, path string, requestECN bool, done func(GetResult)) {
	GetWithConfig(stack, dst, port, path, GetConfig{RequestECN: requestECN}, done)
}

// GetWithConfig is Get with full probe control. Like ntp.Probe, the
// exchange's state lives in one struct with pre-bound callbacks: HTTP
// probes run once per server per trace, so the setup cost matters.
func GetWithConfig(stack *tcpsim.Stack, dst packet.Addr, port uint16, path string, gcfg GetConfig, done func(GetResult)) {
	sim := stack.Host().Sim()
	g := &getRun{
		sim:   sim,
		dst:   dst,
		path:  path,
		start: sim.Now(),
		done:  done,
		res:   GetResult{ECNRequested: gcfg.RequestECN},
	}
	g.deadline = sim.After(GetTimeout, g.onDeadline)
	stack.Dial(dst, port, tcpsim.DialConfig{RequestECN: gcfg.RequestECN, MarkCE: gcfg.MarkCE}, g.onDial)
}

// getRun is the state of one in-flight HTTP probe.
type getRun struct {
	sim      *netsim.Sim
	dst      packet.Addr
	path     string
	start    time.Duration
	done     func(GetResult)
	res      GetResult
	conn     *tcpsim.Conn
	deadline netsim.Timer
	finished bool
	buf      []byte
}

func (g *getRun) finish() {
	if !g.finished {
		g.finished = true
		g.deadline.Stop()
		if g.conn != nil {
			g.res.ECESeen = g.conn.ECESeen
		}
		g.res.Elapsed = g.sim.Now() - g.start
		g.done(g.res)
	}
}

func (g *getRun) onDeadline() {
	if g.finished {
		return
	}
	g.res.Err = tcpsim.ErrTimeout
	g.finish()
	if g.conn != nil {
		g.conn.Abort()
	}
	// A dial still in flight cleans itself up via its SYN timer.
}

func (g *getRun) onDial(c *tcpsim.Conn, err error) {
	if g.finished {
		if c != nil {
			c.Abort() // deadline already fired; drop the late connection
		}
		return
	}
	if err != nil {
		g.res.Err = err
		g.finish()
		return
	}
	g.conn = c
	g.res.ECNNegotiated = c.ECNNegotiated()
	c.OnData(g.onData)
	c.OnClose(g.onConnClose)
	c.Write(g.requestBytes())
}

func (g *getRun) onData(b []byte) {
	g.buf = append(g.buf, b...)
	resp, perr := ParseResponse(g.buf)
	if perr == ErrIncomplete {
		return
	}
	if perr != nil {
		g.res.Err = perr
		g.conn.Abort()
		g.finish()
		return
	}
	g.res.Response = resp
	g.finish()
	g.conn.Close()
}

func (g *getRun) onConnClose(cerr error) {
	if g.res.Response == nil && g.res.Err == nil {
		if cerr == nil {
			cerr = tcpsim.ErrClosed
		}
		g.res.Err = cerr
	}
	g.finish()
}

// requestBytes assembles the GET request directly. The bytes are
// identical to marshalling a Request with Connection, Host and
// User-Agent headers (sorted order), without building the map.
func (g *getRun) requestBytes() []byte {
	b := make([]byte, 0, 4+len(g.path)+11+19+6+15+2+26+2)
	b = append(b, "GET "...)
	b = append(b, g.path...)
	b = append(b, " HTTP/1.1\r\n"...)
	b = append(b, "Connection: close\r\n"...)
	b = append(b, "Host: "...)
	b = appendDottedQuad(b, g.dst)
	b = append(b, "\r\n"...)
	b = append(b, "User-Agent: ecnspider/1.0\r\n"...)
	return append(b, "\r\n"...)
}

// appendDottedQuad renders an address without the netip round trip.
func appendDottedQuad(b []byte, a packet.Addr) []byte {
	for i, o := range a {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, uint64(o), 10)
	}
	return b
}
