// Package httpmin is a small HTTP/1.1 implementation sufficient for the
// study's TCP measurement: a GET client and a server, running over the
// tcpsim stack.
//
// Hosts in the NTP pool are encouraged to run a web server that redirects
// to www.pool.ntp.org; the paper issues "an HTTP GET request for the root
// page of the server" and records whether and what the server answers.
// PoolHandler reproduces the redirect behaviour; Get reproduces the
// probe, reporting both the HTTP outcome and whether the underlying TCP
// connection negotiated ECN.
package httpmin

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Errors surfaced by the codec.
var (
	ErrMalformed  = errors.New("httpmin: malformed message")
	ErrIncomplete = errors.New("httpmin: incomplete message")
)

// Request is an HTTP request (only GET is exercised).
type Request struct {
	Method  string
	Path    string
	Headers map[string]string
}

// Response is an HTTP response.
type Response struct {
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       []byte
}

// Marshal renders the request on the wire.
func (r *Request) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	writeHeaders(&b, r.Headers)
	b.WriteString("\r\n")
	return []byte(b.String())
}

// Marshal renders the response on the wire, always emitting an accurate
// Content-Length so the peer can find the message end.
func (r *Response) Marshal() []byte {
	var b strings.Builder
	status := r.Status
	if status == "" {
		status = defaultStatusText(r.StatusCode)
	}
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.StatusCode, status)
	h := make(map[string]string, len(r.Headers)+1)
	for k, v := range r.Headers {
		h[k] = v
	}
	h["Content-Length"] = strconv.Itoa(len(r.Body))
	writeHeaders(&b, h)
	b.WriteString("\r\n")
	b.Write(r.Body)
	return []byte(b.String())
}

// writeHeaders emits headers in sorted order for deterministic wire
// output (the simulator's reproducibility guarantee extends to payload
// bytes).
func writeHeaders(b *strings.Builder, h map[string]string) {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, h[k])
	}
}

func defaultStatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 302:
		return "Found"
	case 404:
		return "Not Found"
	default:
		return "Status"
	}
}

// ParseRequest decodes a request once fully buffered. It returns
// ErrIncomplete while more bytes are needed.
func ParseRequest(data []byte) (*Request, error) {
	head, _, ok := splitHead(data)
	if !ok {
		return nil, ErrIncomplete
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, lines[0])
	}
	headers, err := parseHeaders(lines[1:])
	if err != nil {
		return nil, err
	}
	return &Request{Method: parts[0], Path: parts[1], Headers: headers}, nil
}

// ParseResponse decodes a response. It returns ErrIncomplete until the
// header block and the Content-Length-delimited body have arrived.
func ParseResponse(data []byte) (*Response, error) {
	head, rest, ok := splitHead(data)
	if !ok {
		return nil, ErrIncomplete
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformed, parts[1])
	}
	status := ""
	if len(parts) == 3 {
		status = parts[2]
	}
	headers, err := parseHeaders(lines[1:])
	if err != nil {
		return nil, err
	}
	bodyLen := 0
	if cl, ok := headers["Content-Length"]; ok {
		bodyLen, err = strconv.Atoi(cl)
		if err != nil || bodyLen < 0 {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
		}
	}
	if len(rest) < bodyLen {
		return nil, ErrIncomplete
	}
	return &Response{
		StatusCode: code,
		Status:     status,
		Headers:    headers,
		Body:       append([]byte(nil), rest[:bodyLen]...),
	}, nil
}

// splitHead separates the header block from the body at the first blank
// line.
func splitHead(data []byte) (head string, rest []byte, ok bool) {
	idx := strings.Index(string(data), "\r\n\r\n")
	if idx < 0 {
		return "", nil, false
	}
	return string(data[:idx]), data[idx+4:], true
}

// parseHeaders decodes "Key: Value" lines, canonicalising the key's
// first letters (enough for the handful of headers in play).
func parseHeaders(lines []string) (map[string]string, error) {
	h := make(map[string]string, len(lines))
	for _, line := range lines {
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		key := canonicalKey(strings.TrimSpace(line[:colon]))
		h[key] = strings.TrimSpace(line[colon+1:])
	}
	return h, nil
}

// canonicalKey title-cases dash-separated tokens: content-length →
// Content-Length.
func canonicalKey(k string) string {
	parts := strings.Split(k, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// RedirectTarget is where pool-member web servers redirect.
const RedirectTarget = "http://www.pool.ntp.org/"

// PoolHandler answers as a pool host's web server does: a 302 redirect
// to the pool website for any path.
func PoolHandler(req *Request) *Response {
	return &Response{
		StatusCode: 302,
		Headers: map[string]string{
			"Location":   RedirectTarget,
			"Connection": "close",
			"Server":     "pool-member/1.0",
		},
		Body: []byte("<a href=\"" + RedirectTarget + "\">Moved</a>\n"),
	}
}
