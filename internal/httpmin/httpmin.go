// Package httpmin is a small HTTP/1.1 implementation sufficient for the
// study's TCP measurement: a GET client and a server, running over the
// tcpsim stack.
//
// Hosts in the NTP pool are encouraged to run a web server that redirects
// to www.pool.ntp.org; the paper issues "an HTTP GET request for the root
// page of the server" and records whether and what the server answers.
// PoolHandler reproduces the redirect behaviour; Get reproduces the
// probe, reporting both the HTTP outcome and whether the underlying TCP
// connection negotiated ECN.
package httpmin

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// Errors surfaced by the codec.
var (
	ErrMalformed  = errors.New("httpmin: malformed message")
	ErrIncomplete = errors.New("httpmin: incomplete message")
)

// Request is an HTTP request (only GET is exercised).
type Request struct {
	Method  string
	Path    string
	Headers map[string]string
}

// Response is an HTTP response.
type Response struct {
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       []byte
}

// Marshal renders the request on the wire. The message is assembled
// with plain appends into one exact buffer — no fmt machinery — since
// the campaign marshals one request per HTTP probe.
func (r *Request) Marshal() []byte {
	b := make([]byte, 0, len(r.Method)+len(r.Path)+12+headersLen(r.Headers)+2)
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Path...)
	b = append(b, " HTTP/1.1\r\n"...)
	b = appendHeaders(b, r.Headers, "", "")
	return append(b, "\r\n"...)
}

// Marshal renders the response on the wire, always emitting an accurate
// Content-Length so the peer can find the message end.
func (r *Response) Marshal() []byte {
	status := r.Status
	if status == "" {
		status = defaultStatusText(r.StatusCode)
	}
	var clBuf [20]byte
	cl := strconv.AppendInt(clBuf[:0], int64(len(r.Body)), 10)
	b := make([]byte, 0, 9+4+len(status)+2+headersLen(r.Headers)+16+len(cl)+4+2+len(r.Body))
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(r.StatusCode), 10)
	b = append(b, ' ')
	b = append(b, status...)
	b = append(b, "\r\n"...)
	b = appendHeaders(b, r.Headers, "Content-Length", string(cl))
	b = append(b, "\r\n"...)
	return append(b, r.Body...)
}

// headersLen sizes the serialized header block.
func headersLen(h map[string]string) int {
	n := 0
	for k, v := range h {
		n += len(k) + 2 + len(v) + 2
	}
	return n
}

// appendHeaders emits headers in sorted order for deterministic wire
// output (the simulator's reproducibility guarantee extends to payload
// bytes). A non-empty extraKey is merged into the sort order as if it
// were in the map, which lets Response.Marshal add Content-Length
// without copying the header map.
func appendHeaders(b []byte, h map[string]string, extraKey, extraVal string) []byte {
	var arr [8]string
	keys := arr[:0]
	for k := range h {
		keys = append(keys, k)
	}
	if extraKey != "" {
		if _, exists := h[extraKey]; !exists {
			keys = append(keys, extraKey)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := h[k]
		if extraKey != "" && k == extraKey {
			v = extraVal // computed value wins, as an explicit overwrite would
		}
		b = append(b, k...)
		b = append(b, ": "...)
		b = append(b, v...)
		b = append(b, "\r\n"...)
	}
	return b
}

func defaultStatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 302:
		return "Found"
	case 404:
		return "Not Found"
	default:
		return "Status"
	}
}

// ParseRequest decodes a request once fully buffered. It returns
// ErrIncomplete while more bytes are needed. Parsing walks the raw
// bytes; only the retained values (method, path, header keys and
// values) become strings.
func ParseRequest(data []byte) (*Request, error) {
	head, _, ok := splitHead(data)
	if !ok {
		return nil, ErrIncomplete
	}
	first, rest := cutLine(head)
	method, after, ok1 := bytes.Cut(first, []byte(" "))
	path, proto, ok2 := bytes.Cut(after, []byte(" "))
	if !ok1 || !ok2 || !bytes.HasPrefix(proto, []byte("HTTP/1.")) {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, first)
	}
	headers, err := parseHeaders(rest)
	if err != nil {
		return nil, err
	}
	return &Request{Method: string(method), Path: string(path), Headers: headers}, nil
}

// ParseResponse decodes a response. It returns ErrIncomplete until the
// header block and the Content-Length-delimited body have arrived.
func ParseResponse(data []byte) (*Response, error) {
	head, rest, ok := splitHead(data)
	if !ok {
		return nil, ErrIncomplete
	}
	first, hdrLines := cutLine(head)
	proto, after, ok1 := bytes.Cut(first, []byte(" "))
	if !ok1 || !bytes.HasPrefix(proto, []byte("HTTP/1.")) {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, first)
	}
	codeBytes, statusBytes, _ := bytes.Cut(after, []byte(" "))
	code, err := strconv.Atoi(string(codeBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformed, codeBytes)
	}
	headers, err := parseHeaders(hdrLines)
	if err != nil {
		return nil, err
	}
	bodyLen := 0
	if cl, ok := headers["Content-Length"]; ok {
		bodyLen, err = strconv.Atoi(cl)
		if err != nil || bodyLen < 0 {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
		}
	}
	if len(rest) < bodyLen {
		return nil, ErrIncomplete
	}
	return &Response{
		StatusCode: code,
		Status:     string(statusBytes),
		Headers:    headers,
		Body:       append([]byte(nil), rest[:bodyLen]...),
	}, nil
}

// splitHead separates the header block from the body at the first blank
// line.
func splitHead(data []byte) (head, rest []byte, ok bool) {
	idx := bytes.Index(data, []byte("\r\n\r\n"))
	if idx < 0 {
		return nil, nil, false
	}
	return data[:idx], data[idx+4:], true
}

// cutLine splits off the first CRLF-terminated line.
func cutLine(data []byte) (line, rest []byte) {
	if i := bytes.Index(data, []byte("\r\n")); i >= 0 {
		return data[:i], data[i+2:]
	}
	return data, nil
}

// parseHeaders decodes "Key: Value" lines, canonicalising the key's
// first letters (enough for the handful of headers in play).
func parseHeaders(block []byte) (map[string]string, error) {
	h := make(map[string]string, 4)
	for len(block) > 0 {
		var line []byte
		line, block = cutLine(block)
		if len(line) == 0 {
			continue
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		key := canonicalKey(bytes.TrimSpace(line[:colon]))
		h[key] = string(bytes.TrimSpace(line[colon+1:]))
	}
	return h, nil
}

// canonicalKey title-cases dash-separated tokens: content-length →
// Content-Length. Keys that are already canonical — every header this
// system itself emits — convert with a single allocation and no
// intermediate splitting.
func canonicalKey(k []byte) string {
	canonical := true
	startOfToken := true
	for _, c := range k {
		if startOfToken {
			if c >= 'a' && c <= 'z' {
				canonical = false
				break
			}
		} else if c >= 'A' && c <= 'Z' {
			canonical = false
			break
		}
		startOfToken = c == '-'
	}
	if canonical {
		return string(k)
	}
	b := make([]byte, len(k))
	startOfToken = true
	for i, c := range k {
		switch {
		case startOfToken && c >= 'a' && c <= 'z':
			c -= 'a' - 'A'
		case !startOfToken && c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		}
		b[i] = c
		startOfToken = c == '-'
	}
	return string(b)
}

// RedirectTarget is where pool-member web servers redirect.
const RedirectTarget = "http://www.pool.ntp.org/"

// PoolHandler answers as a pool host's web server does: a 302 redirect
// to the pool website for any path. The response is one shared
// immutable value — Serve only marshals it — so answering costs no
// allocation in the campaign's per-server request loop.
func PoolHandler(req *Request) *Response {
	return poolResponse
}

var poolResponse = &Response{
	StatusCode: 302,
	Headers: map[string]string{
		"Location":   RedirectTarget,
		"Connection": "close",
		"Server":     "pool-member/1.0",
	},
	Body: []byte("<a href=\"" + RedirectTarget + "\">Moved</a>\n"),
}
