package httpmin

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The codec must be genuine wire-format HTTP: exchange with Go's
// net/http server over a real loopback TCP connection.
func TestInteropWithStdlibServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()

	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Behave like a pool host: redirect to the pool site.
		w.Header().Set("Location", RedirectTarget)
		w.WriteHeader(http.StatusFound)
		io.WriteString(w, "moved\n")
	})}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := Request{
		Method: "GET",
		Path:   "/",
		Headers: map[string]string{
			"Host":       ln.Addr().String(),
			"Connection": "close",
		},
	}
	if _, err := conn.Write(req.Marshal()); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))

	var buf []byte
	tmp := make([]byte, 4096)
	for {
		n, rerr := conn.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if resp, perr := ParseResponse(buf); perr == nil {
			if resp.StatusCode != 302 {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if resp.Headers["Location"] != RedirectTarget {
				t.Fatalf("location = %q", resp.Headers["Location"])
			}
			if !strings.Contains(string(resp.Body), "moved") {
				t.Fatalf("body = %q", resp.Body)
			}
			return // success
		} else if !errors.Is(perr, ErrIncomplete) {
			t.Fatalf("parse: %v (buffer %q)", perr, buf)
		}
		if rerr != nil {
			t.Fatalf("connection ended before full response: %v (buffer %q)", rerr, buf)
		}
	}
}

// The server side of the codec must satisfy a stdlib http.Client.
func TestInteropServeStdlibClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()

	// A tiny accept loop speaking via the httpmin codec over real conns.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var buf []byte
				tmp := make([]byte, 4096)
				for {
					n, rerr := c.Read(tmp)
					buf = append(buf, tmp[:n]...)
					if req, perr := ParseRequest(buf); perr == nil {
						resp := PoolHandler(req)
						c.Write(resp.Marshal())
						return
					} else if !errors.Is(perr, ErrIncomplete) || rerr != nil {
						return
					}
				}
			}(conn)
		}
	}()

	client := &http.Client{
		Timeout: 3 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse // don't follow the redirect
		},
	}
	resp, err := client.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("stdlib client against httpmin server: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 302 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != RedirectTarget {
		t.Errorf("location = %q", got)
	}
}
