package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	g := r.Gauge("repro_test_depth", "a gauge")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}

	// Idempotent re-registration returns the same instrument.
	if r.Counter("repro_test_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	lab := Label{Name: "kind", Value: "x"}
	if r.Counter("repro_test_total", "a counter", lab) == c {
		t.Fatal("distinct labels must yield a distinct instrument")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_test_total", "a counter")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("repro_test_total", "now a gauge")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("repro_test_seconds", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1066.5 {
		t.Fatalf("sum = %v, want 1066.5", h.Sum())
	}
	var sample *Sample
	for _, s := range r.Snapshot() {
		if s.Name == "repro_test_seconds" {
			s := s
			sample = &s
		}
	}
	if sample == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// Cumulative: le=1 → {0.5, 1}, le=10 → +{5, 10}, le=100 → +{50},
	// +Inf → +{1000}.
	want := []uint64{2, 4, 5, 6}
	for i, b := range sample.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if !math.IsInf(sample.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", sample.Buckets[3].UpperBound)
	}
	if sample.Count != 6 || sample.Sum != 1066.5 {
		t.Fatalf("snapshot count/sum = %d/%v, want 6/1066.5", sample.Count, sample.Sum)
	}
}

// TestConcurrentWriters hammers every instrument kind from many
// goroutines; run under -race this is the memory-safety proof, and the
// final values prove no increment was lost.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_total", "c")
	g := r.Gauge("repro_test_gauge", "g")
	h := r.Histogram("repro_test_hist", "h", []float64{10, 100})

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestSnapshotConsistencyUnderLoad snapshots while writers are mid-
// flight and asserts every snapshot is internally consistent: bucket
// counts cumulative and monotone, histogram count equal to its +Inf
// bucket, counters monotone across snapshots.
func TestSnapshotConsistencyUnderLoad(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_total", "c")
	h := r.Histogram("repro_test_hist", "h", []float64{1, 2, 3})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(float64(i % 5))
				}
			}
		}()
	}

	var prevCounter uint64
	for i := 0; i < 200; i++ {
		for _, s := range r.Snapshot() {
			switch s.Name {
			case "repro_test_total":
				if s.Uint < prevCounter {
					t.Errorf("counter went backwards: %d < %d", s.Uint, prevCounter)
				}
				prevCounter = s.Uint
			case "repro_test_hist":
				var prev uint64
				for bi, b := range s.Buckets {
					if b.Count < prev {
						t.Errorf("bucket %d not cumulative: %d < %d", bi, b.Count, prev)
					}
					prev = b.Count
				}
				if s.Count != s.Buckets[len(s.Buckets)-1].Count {
					t.Errorf("histogram count %d != +Inf bucket %d", s.Count, s.Buckets[len(s.Buckets)-1].Count)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_jobs_total", "jobs", Label{Name: "state", Value: "done"}).Add(3)
	r.Counter("repro_jobs_total", "jobs", Label{Name: "state", Value: `we"ird\n`}).Add(1)
	r.Gauge("repro_depth", "depth").Set(2.5)
	r.GaugeFunc("repro_uptime_seconds", "uptime", func() float64 { return 7 })
	h := r.Histogram("repro_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE repro_jobs_total counter",
		`repro_jobs_total{state="done"} 3`,
		`repro_jobs_total{state="we\"ird\\n"} 1`,
		"# TYPE repro_depth gauge",
		"repro_depth 2.5",
		"repro_uptime_seconds 7",
		"# TYPE repro_lat_seconds histogram",
		`repro_lat_seconds_bucket{le="0.1"} 1`,
		`repro_lat_seconds_bucket{le="1"} 2`,
		`repro_lat_seconds_bucket{le="+Inf"} 2`,
		"repro_lat_seconds_sum 0.55",
		"repro_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One header per family, even with two labeled children.
	if strings.Count(out, "# TYPE repro_jobs_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_jobs_total", "jobs").Add(3)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"metrics"`, `"repro_jobs_total"`, `"counter"`, `"uint": 3`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON exposition missing %q in:\n%s", want, out)
		}
	}
}
