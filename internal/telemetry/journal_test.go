package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestJournalAppendSnapshot(t *testing.T) {
	j := NewJournal(64)
	job := "j-000001"
	vant := "ams-nl"
	j.Append(EventJobQueued, &job, nil, -1, -1)
	j.Append(EventJobRunning, &job, nil, -1, -1)
	j.Append(EventShardStart, &job, &vant, 3, 0)
	j.Append(EventShardDone, &job, &vant, 3, 0)
	j.Append(EventJobDone, &job, nil, -1, -1)

	evs := j.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("snapshot has %d events, want 5", len(evs))
	}
	wantKinds := []string{"queued", "running", "shard-start", "shard-done", "done"}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if ev.Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i)
		}
		if ev.Job != job {
			t.Errorf("event %d job = %q, want %q", i, ev.Job, job)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d has zero time", i)
		}
	}
	if evs[2].Shard != 3 || evs[2].Slice != 0 || evs[2].Detail != vant {
		t.Errorf("shard event fields = %+v", evs[2])
	}
}

func TestJournalWrapKeepsNewest(t *testing.T) {
	j := NewJournal(64) // rounds to exactly 64
	if j.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", j.Cap())
	}
	jobs := make([]string, 100)
	for i := range jobs {
		jobs[i] = fmt.Sprintf("j-%06d", i)
		j.Append(EventJobQueued, &jobs[i], nil, -1, -1)
	}
	evs := j.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot has %d events, want 64", len(evs))
	}
	if evs[0].Seq != 36 || evs[0].Job != "j-000036" {
		t.Errorf("oldest retained = seq %d job %q, want 36/j-000036", evs[0].Seq, evs[0].Job)
	}
	if evs[63].Seq != 99 || evs[63].Job != "j-000099" {
		t.Errorf("newest retained = seq %d job %q, want 99/j-000099", evs[63].Seq, evs[63].Job)
	}
}

func TestJournalJobFilter(t *testing.T) {
	j := NewJournal(64)
	a, b := "j-000001", "j-000002"
	j.Append(EventJobQueued, &a, nil, -1, -1)
	j.Append(EventJobQueued, &b, nil, -1, -1)
	j.Append(EventJobDone, &a, nil, -1, -1)
	evs := j.JobEvents(a)
	if len(evs) != 2 || evs[0].Kind != "queued" || evs[1].Kind != "done" {
		t.Fatalf("JobEvents(%s) = %+v", a, evs)
	}
}

// TestJournalConcurrent has many writers lapping a small ring while
// readers snapshot continuously. Under -race this proves the seqlock
// protocol is data-race-free; the assertions prove no snapshot ever
// observes a torn entry (a ticket whose fields disagree with its seq).
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	const writers = 8
	const perWriter = 5000

	// Each writer has its own identity string; entries record the
	// writer in Shard and the iteration in Slice, so a torn entry —
	// fields from two different appends — is detectable because job,
	// shard and detail must agree.
	ids := make([]string, writers)
	for w := range ids {
		ids[w] = fmt.Sprintf("j-%06d", w)
	}

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	var readerWg sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for _, ev := range j.Snapshot() {
					if ev.Kind == "none" {
						t.Errorf("snapshot returned an unpublished slot: %+v", ev)
					}
					if ev.Job != ids[ev.Shard] {
						t.Errorf("torn entry: job %q but shard %d", ev.Job, ev.Shard)
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Append(EventShardDone, &ids[w], nil, int32(w), int32(i))
			}
		}(w)
	}
	wg.Wait()
	close(stopReaders)
	readerWg.Wait()

	if j.Len() != writers*perWriter {
		t.Fatalf("journal len = %d, want %d", j.Len(), writers*perWriter)
	}
	// After quiescence every retained entry is readable.
	if got := len(j.Snapshot()); got != j.Cap() {
		t.Fatalf("quiescent snapshot has %d events, want %d", got, j.Cap())
	}
}
