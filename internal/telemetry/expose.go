package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Exposition renders a Snapshot — never the live instruments — so one
// scrape is a consistent point-in-time view and rendering cost never
// lands on instrument writers.

// PromContentType is the Prometheus text exposition content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text format:
// one # HELP / # TYPE header per family, histograms as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var prev string
	for i := range samples {
		s := &samples[i]
		if s.Name != prev {
			prev = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if err := writePromSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writePromSample(w io.Writer, s *Sample) error {
	switch s.Kind {
	case KindHistogram:
		for _, b := range s.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.Name, bucketLabels(s.Labels, b.UpperBound), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value))
		return err
	}
}

// bucketLabels renders a histogram bucket's label set: the family
// labels plus le.
func bucketLabels(labels []Label, ub float64) string {
	le := "+Inf"
	if !math.IsInf(ub, 1) {
		le = formatFloat(ub)
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for _, l := range labels {
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteString(`",`)
	}
	sb.WriteString(`le="`)
	sb.WriteString(le)
	sb.WriteString(`"}`)
	return sb.String()
}

// formatFloat renders a value the way Prometheus clients expect:
// shortest round-trip representation, integers without exponents.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the registry snapshot as a JSON document:
// {"metrics": [Sample...]}. The sample order matches the Prometheus
// exposition (sorted by name, then labels).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Sample `json:"metrics"`
	}{Metrics: r.Snapshot()})
}
