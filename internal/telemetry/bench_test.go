package telemetry

import (
	"testing"
)

// BenchmarkTelemetryHotPath is the perf-gated write path: one counter
// add, one gauge set, one histogram observation and one journal append
// per op. scripts/perf_gate.sh pins it at 0 allocs/op — the guarantee
// that lets instrumentation sit on the engine's hot paths without
// reintroducing the allocations PR 3 removed.
func BenchmarkTelemetryHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("repro_bench_total", "bench counter")
	g := r.Gauge("repro_bench_gauge", "bench gauge")
	h := r.Histogram("repro_bench_seconds", "bench histogram", DurationBuckets())
	j := NewJournal(4096)
	job := "j-000001"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.Set(float64(i))
		h.Observe(float64(i%1000) * 1e-3)
		j.Append(EventShardDone, &job, nil, int32(i&7), 0)
	}
}

// BenchmarkTelemetryCounter isolates the cheapest instrument — the
// one that could plausibly sit per-packet.
func BenchmarkTelemetryCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("repro_bench_total", "bench counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetrySnapshot measures the read path a scrape pays on
// a realistically sized registry.
func BenchmarkTelemetrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter("repro_bench_total", "c", Label{Name: "i", Value: string(rune('a' + i))}).Add(uint64(i))
	}
	for i := 0; i < 8; i++ {
		h := r.Histogram("repro_bench_seconds", "h", DurationBuckets(),
			Label{Name: "i", Value: string(rune('a' + i))})
		h.Observe(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Snapshot(); len(s) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
