// Package telemetry is the engine's flight-recorder core: an
// allocation-free metrics substrate (atomic counters, gauges and
// fixed-bucket histograms behind a registry) plus a lock-free
// ring-buffer event journal, with snapshot-based exposition in both
// Prometheus text and JSON form.
//
// Two constraints shape the design (DESIGN.md §12):
//
//   - Out-of-band by construction. Nothing in this package touches a
//     simulation PRNG, schedules an event, or appears in dataset bytes:
//     instruments are plain atomics the instrumented code writes and the
//     exposition layer reads. The campaign determinism grid therefore
//     hashes identically with telemetry attached or absent — the
//     property internal/campaign's out-of-band test pins.
//   - Zero allocation on the write path. Counter.Add, Gauge.Set,
//     Histogram.Observe and Journal.Append allocate nothing once the
//     instrument exists (scripts/perf_gate.sh pins
//     BenchmarkTelemetryHotPath at 0 allocs/op), so instrumentation can
//     sit next to the packet hot path without re-introducing the
//     allocations PR 3 removed.
//
// Exposition is snapshot-based: readers call Registry.Snapshot, which
// loads every atomic once into plain values, and render from the
// snapshot. A scrape therefore sees a consistent point-in-time view of
// each instrument (never a half-updated histogram) and holds no lock
// that could back-pressure writers.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use, but instruments are normally created through a
// Registry so they appear in exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (current queue depth,
// workers busy, bytes resident). Stored as IEEE-754 bits in a uint64;
// Set is a single store, Add a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-exposition
// buckets chosen at construction. Observe is lock-free: one bucket
// increment, one count increment, one CAS-looped sum update. Bounds
// are upper-inclusive (Prometheus `le`) with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; the +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: instrument bucket counts are small (≤ ~16) and the
	// scan touches one cache line, which beats a branchy binary search.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is the default latency bound set, in seconds: 100µs
// to ~100s in roughly 3× steps — wide enough for both an HTTP cache
// hit and a paper-scale shard.
func DurationBuckets() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100}
}

// SizeBuckets is the default size bound set (bytes, powers of 4 from
// 256B to ~64MB) for payload and backlog distributions.
func SizeBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
}

// Label is one constant name=value pair fixed at registration.
// Instruments with the same name and different labels form one
// exposition family (e.g. repro_aqm_ce_marked_total{discipline="red"}).
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Kind discriminates instrument types in snapshots.
type Kind string

// The instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// fn, when non-nil, is a gauge whose value is computed at snapshot
	// time (queue depth, uptime). It must be safe to call from any
	// goroutine.
	fn func() float64
}

// Registry holds a process subsystem's instruments. Registration is
// idempotent: asking for an already-registered (name, labels) pair
// returns the existing instrument, so independent components can share
// a family without coordinating. Mismatched re-registration (same
// name, different kind or help) panics — it is always a programming
// error.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// metricKey builds the identity key for (name, labels).
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('{')
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte('}')
	}
	return sb.String()
}

// register returns the existing metric for (name, labels) or files a
// new one built by mk.
func (r *Registry) register(name, help string, kind Kind, labels []Label, mk func(*metric)) *metric {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), kind: kind}
	mk(m)
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, KindCounter, labels, func(m *metric) { m.counter = new(Counter) })
	return m.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, KindGauge, labels, func(m *metric) { m.gauge = new(Gauge) })
	return m.gauge
}

// GaugeFunc registers a gauge computed by fn at snapshot time. fn must
// be safe to call from any goroutine. Re-registering the same (name,
// labels) keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, labels, func(m *metric) { m.fn = fn })
}

// Histogram registers (or fetches) a histogram over the given bucket
// upper bounds (sorted ascending; +Inf is implicit). Bounds are only
// consulted for a new registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.register(name, help, KindHistogram, labels, func(m *metric) {
		if len(bounds) == 0 {
			bounds = DurationBuckets()
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not sorted", name))
		}
		m.hist = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	})
	return m.hist
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (Prometheus
	// `le`); +Inf for the last bucket.
	UpperBound float64 `json:"-"`
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64 `json:"count"`
}

// bucketJSON is Bucket's wire form: the bound travels as a string
// because encoding/json rejects the +Inf float every histogram's last
// bucket carries.
type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{LE: formatFloat(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	le, err := strconv.ParseFloat(w.LE, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bucket bound %q: %w", w.LE, err)
	}
	b.UpperBound, b.Count = le, w.Count
	return nil
}

// Sample is one instrument's point-in-time state.
type Sample struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   Kind    `json:"kind"`
	Labels []Label `json:"labels,omitempty"`

	// Value carries counter and gauge readings (a counter's as float64
	// for uniformity; Uint carries the exact count).
	Value float64 `json:"value"`
	Uint  uint64  `json:"uint,omitempty"`

	// Histogram fields.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot loads every instrument once and returns the samples sorted
// by (name, labels) — families contiguous, order stable across calls.
// Histograms are snapshotted bucket-first, so a concurrent Observe can
// only make Count >= the bucket total, never smaller; the exposition
// clamps to the bucket total to keep each rendered histogram
// internally consistent.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	samples := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Help: m.help, Kind: m.kind, Labels: m.labels}
		switch {
		case m.counter != nil:
			s.Uint = m.counter.Value()
			s.Value = float64(s.Uint)
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.fn != nil:
			s.Value = m.fn()
		case m.hist != nil:
			h := m.hist
			s.Buckets = make([]Bucket, len(h.buckets))
			var cum uint64
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
			}
			// The bucket total is the consistent count: Observe bumps its
			// bucket before the shared count, so the count atomic may
			// lag or (read later) lead the bucket reads, but the bucket
			// sum always describes exactly the observations this
			// snapshot's buckets contain.
			s.Count = cum
			s.Sum = h.Sum()
		}
		samples = append(samples, s)
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return labelString(samples[i].Labels) < labelString(samples[j].Labels)
	})
	return samples
}

// labelString renders labels in Prometheus form ({} elided).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
