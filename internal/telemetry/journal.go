package telemetry

import (
	"runtime"
	"sync/atomic"
	"time"
)

// The journal is the flight-recorder half of the package: a fixed-size
// ring of recent lifecycle events (job queued → running → done, shard
// start/finish) that writers append to without locks and readers
// snapshot without stopping the writers.
//
// Concurrency protocol (a per-slot seqlock over a Vyukov-style
// ticketed ring):
//
//   - A writer claims a ticket t with one atomic add on head. Ticket t
//     owns slot t % size for its lap.
//   - Before touching the slot it waits for the previous lap's writer
//     to have published (ver == t-size+1) — in practice never, since
//     the ring is orders of magnitude larger than the writer count —
//     then stamps ver = t (odd state: "writing"), stores the fields,
//     and publishes ver = t+1.
//   - A reader snapshots by walking the last size tickets: load ver,
//     skip the slot unless ver == t+1, copy the fields, re-check ver.
//     An overwriting writer stamps ver = t' before touching fields, so
//     a torn copy can never pass the re-check.
//
// Every slot field is an atomic, so the protocol is exactly as written
// — no benign-data-race hand-waving, and the -race tests hammer it.
// Append stores only word-sized values (string pointers, not strings),
// so appending allocates nothing; callers pass *string for the
// identity fields, pointing at strings that already live on the heap
// (a job's ID, an interned vantage name).

// EventKind classifies a journal event.
type EventKind uint32

// The journal event kinds, covering the control plane's job and shard
// lifecycle.
const (
	EventNone EventKind = iota
	EventJobQueued
	EventJobRunning
	EventJobDone
	EventJobFailed
	EventJobCacheHit
	EventJobJoined
	EventShardStart
	EventShardDone
	EventShardLeased
	EventLeaseExpired
)

var eventKindNames = [...]string{
	EventNone:         "none",
	EventJobQueued:    "queued",
	EventJobRunning:   "running",
	EventJobDone:      "done",
	EventJobFailed:    "failed",
	EventJobCacheHit:  "cache-hit",
	EventJobJoined:    "joined",
	EventShardStart:   "shard-start",
	EventShardDone:    "shard-done",
	EventShardLeased:  "shard-leased",
	EventLeaseExpired: "lease-expired",
}

// String returns the kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one recorded lifecycle transition, as read back from a
// snapshot.
type Event struct {
	// Seq is the journal-wide ticket: a strictly increasing append
	// index, so consumers can order and dedupe across snapshots.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	// Job is the owning job's ID; empty for events outside any job.
	Job string `json:"job,omitempty"`
	// Shard and Slice identify the (vantage, slice) unit for shard
	// events; both are -1 on job-level events.
	Shard int `json:"shard,omitempty"`
	Slice int `json:"slice,omitempty"`
	// Detail carries the event's free-form annotation: the vantage name
	// on shard events, the error on failures.
	Detail string `json:"detail,omitempty"`
}

type journalSlot struct {
	ver    atomic.Uint64
	wall   atomic.Int64
	kind   atomic.Uint32
	shard  atomic.Int32
	slice  atomic.Int32
	job    atomic.Pointer[string]
	detail atomic.Pointer[string]
}

// Journal is the lock-free ring buffer. Create with NewJournal.
type Journal struct {
	slots []journalSlot
	mask  uint64
	head  atomic.Uint64
}

// NewJournal returns a journal retaining the most recent size events
// (rounded up to a power of two, minimum 64).
func NewJournal(size int) *Journal {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Journal{slots: make([]journalSlot, n), mask: uint64(n - 1)}
}

// Cap returns the journal's retention capacity in events.
func (j *Journal) Cap() int { return len(j.slots) }

// Len returns the number of events appended so far (not the number
// retained).
func (j *Journal) Len() uint64 { return j.head.Load() }

// Append records one event. job and detail may be nil; when non-nil
// they must point at strings that outlive the journal entry (a field
// of a live object, a package constant — not a loop variable about to
// be reused). Append performs no allocation and takes no lock.
func (j *Journal) Append(kind EventKind, job, detail *string, shard, slice int32) {
	t := j.head.Add(1) - 1
	sl := &j.slots[t&j.mask]
	// Wait out the previous lap's writer (ver must have reached its
	// published value t-cap+1 before this lap may begin). With a
	// 4096-slot ring and handfuls of writers this never spins; it
	// exists so a lapped slow writer cannot interleave stores with
	// ours.
	if t >= uint64(len(j.slots)) {
		want := t - uint64(len(j.slots)) + 1
		for sl.ver.Load() != want {
			runtime.Gosched() // previous lap's writer is mid-append
		}
	}
	sl.ver.Store(t) // "writing" stamp: readers treat != t+1 as in-flight
	sl.wall.Store(time.Now().UnixNano())
	sl.kind.Store(uint32(kind))
	sl.shard.Store(shard)
	sl.slice.Store(slice)
	sl.job.Store(job)
	sl.detail.Store(detail)
	sl.ver.Store(t + 1)
}

// Snapshot returns the retained events in append order (oldest first).
// Events being overwritten or mid-append during the walk are skipped;
// everything returned is internally consistent.
func (j *Journal) Snapshot() []Event {
	head := j.head.Load()
	size := uint64(len(j.slots))
	start := uint64(0)
	if head > size {
		start = head - size
	}
	out := make([]Event, 0, head-start)
	for t := start; t < head; t++ {
		sl := &j.slots[t&j.mask]
		if sl.ver.Load() != t+1 {
			continue // mid-append, or already lapped
		}
		ev := Event{
			Seq:   t,
			Time:  time.Unix(0, sl.wall.Load()),
			Kind:  EventKind(sl.kind.Load()).String(),
			Shard: int(sl.shard.Load()),
			Slice: int(sl.slice.Load()),
		}
		if p := sl.job.Load(); p != nil {
			ev.Job = *p
		}
		if p := sl.detail.Load(); p != nil {
			ev.Detail = *p
		}
		// The fields above were copied; if the version moved, a lapping
		// writer touched the slot mid-copy and the copy is torn.
		if sl.ver.Load() != t+1 {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// JobEvents returns the retained events for one job ID, oldest first.
func (j *Journal) JobEvents(id string) []Event {
	all := j.Snapshot()
	out := all[:0]
	for _, ev := range all {
		if ev.Job == id {
			out = append(out, ev)
		}
	}
	return out
}
