package aqm

import (
	"math/rand"
	"testing"
	"time"
)

// stateOf snapshots everything observable about a queue that the lazy
// catch-up replay must keep bit-identical to the event-driven path:
// occupancy, byte backlog, lifetime stats, and the discipline's control
// state.
func stateOf(t *testing.T, q Queue) map[string]any {
	t.Helper()
	s := map[string]any{
		"len":   q.Len(),
		"bytes": q.Bytes(),
		"stats": q.Stats(),
	}
	switch d := q.(type) {
	case *RED:
		s["avg"] = d.avg
		s["count"] = d.count
		s["idle"] = d.idle
		s["idleSince"] = d.idleSince
	case *CoDel:
		s["firstAbove"] = d.firstAbove
		s["dropNext"] = d.dropNext
		s["dropCount"] = d.count
		s["dropping"] = d.dropping
	}
	return s
}

func diffState(t *testing.T, label string, a, b map[string]any) {
	t.Helper()
	for k, va := range a {
		if vb := b[k]; va != vb {
			t.Errorf("%s: %s differs: batch=%v single=%v", label, k, va, vb)
		}
	}
}

// TestBatchAdvanceEqualsSingleSteps is the batch-advance entry point's
// defining property: EnqueuePhantoms(now, size, n) leaves a queue —
// occupancy, stats, RED's EWMA/uniformization state, CoDel's interval
// state, and the PRNG stream position — exactly where n individual
// NewPhantom+Enqueue calls leave it, under a randomized schedule of
// arrival bursts, idle gaps and partial drains.
func TestBatchAdvanceEqualsSingleSteps(t *testing.T) {
	disciplines := []struct {
		name string
		make func(rng *rand.Rand) Queue
	}{
		{"droptail", func(*rand.Rand) Queue { return NewDropTail(32) }},
		{"red", func(rng *rand.Rand) Queue { return NewRED(32, rng) }},
		{"codel", func(*rand.Rand) Queue { return NewCoDel(32) }},
	}
	for _, d := range disciplines {
		t.Run(d.name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				rngA := rand.New(rand.NewSource(100 + seed))
				rngB := rand.New(rand.NewSource(100 + seed))
				batch := d.make(rngA)
				single := d.make(rngB)

				plan := rand.New(rand.NewSource(9000 + seed))
				now := time.Duration(0)
				for step := 0; step < 400; step++ {
					switch plan.Intn(4) {
					case 0, 1: // arrival burst at one instant
						n := plan.Intn(6)
						a := batch.EnqueuePhantoms(now, 512, n)
						b := 0
						for i := 0; i < n; i++ {
							if single.Enqueue(now, NewPhantom(512)) {
								b++
							}
						}
						if a != b {
							t.Fatalf("seed %d step %d: admitted %d via batch, %d via singles", seed, step, a, b)
						}
					case 2: // drain some, advancing the clock per dequeue
						for i := plan.Intn(4); i >= 0; i-- {
							pa, oka := batch.Dequeue(now)
							pb, okb := single.Dequeue(now)
							if oka != okb {
								t.Fatalf("seed %d step %d: dequeue diverges: %v vs %v", seed, step, oka, okb)
							}
							if oka && (pa.Size != pb.Size || pa.Arrived != pb.Arrived) {
								t.Fatalf("seed %d step %d: dequeued (%d,%v) vs (%d,%v)",
									seed, step, pa.Size, pa.Arrived, pb.Size, pb.Arrived)
							}
							if oka {
								pa.Free()
								pb.Free()
							}
							now += time.Duration(plan.Intn(5000)) * time.Microsecond
						}
					case 3: // idle gap (exercises RED's idle aging on re-arrival)
						now += time.Duration(plan.Intn(200)) * time.Millisecond
					}
					now += time.Duration(plan.Intn(2000)) * time.Microsecond
				}

				diffState(t, d.name, stateOf(t, batch), stateOf(t, single))
				// The PRNG stream position must match too: RED's next draw
				// comes out identical, so downstream consumers of a shared
				// simulation PRNG see an unshifted stream.
				if a, b := rngA.Float64(), rngB.Float64(); a != b {
					t.Errorf("seed %d: PRNG stream position diverged: %v vs %v", seed, a, b)
				}
			}
		})
	}
}

// TestBatchAdvanceMatchesGenericFallback pins the native batch loops to
// the generic shell-based definition (enqueuePhantoms): same admissions,
// same state, same draws.
func TestBatchAdvanceMatchesGenericFallback(t *testing.T) {
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	native := NewRED(24, rngA)
	generic := NewRED(24, rngB)
	now := time.Duration(0)
	for step := 0; step < 300; step++ {
		n := step % 5
		if a, b := native.EnqueuePhantoms(now, 512, n), enqueuePhantoms(generic, &generic.fifo, now, 512, n); a != b {
			t.Fatalf("step %d: native admitted %d, generic %d", step, a, b)
		}
		if step%3 == 0 {
			pa, oka := native.Dequeue(now)
			pb, okb := generic.Dequeue(now)
			if oka != okb {
				t.Fatalf("step %d: dequeue diverges", step)
			}
			if oka {
				pa.Free()
				pb.Free()
			}
		}
		now += 3 * time.Millisecond
	}
	diffState(t, "red", stateOf(t, native), stateOf(t, generic))
	if a, b := rngA.Float64(), rngB.Float64(); a != b {
		t.Errorf("PRNG stream position diverged: %v vs %v", a, b)
	}
}
