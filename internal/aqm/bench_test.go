package aqm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// newBufRing builds a ring of pooled wire buffers carrying the
// reference ECT(0) datagram. The ring is larger than any queue
// operating point in these benchmarks, so a buffer is never offered
// while still queued; each benchmark iteration restores its ECN field
// in place (the incremental-checksum path) instead of re-copying the
// whole template, which is exactly what the link layer's packets do —
// a buffer's bytes are written once at serialization and then only
// mutated.
func newBufRing(tb testing.TB, n int) []*packet.Buf {
	tb.Helper()
	template, err := packet.BuildUDP(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
		40000, 123, 64, ecn.ECT0, 1, make([]byte, 480))
	if err != nil {
		tb.Fatal(err)
	}
	ring := make([]*packet.Buf, n)
	for i := range ring {
		ring[i] = packet.NewBuf()
		ring[i].Write(template)
	}
	return ring
}

// BenchmarkCEMarkThroughput measures the pooled enqueue→mark→dequeue
// hot path of each discipline under saturation: every packet traverses
// the full admission decision and most take a congestion action (CE
// re-mark with RFC 1624 incremental checksum update). This is the
// per-packet cost a congested campaign pays at every bottleneck; the
// bench report (make bench → BENCH_3.json) tracks it across PRs.
// Steady state must be allocation-free — the perf-gate CI job fails on
// any allocs/op here.
func BenchmarkCEMarkThroughput(b *testing.B) {
	for _, name := range []string{"droptail", "red", "codel"} {
		b.Run(name, func(b *testing.B) {
			q, err := New(name, 50, rand.New(rand.NewSource(2015)))
			if err != nil {
				b.Fatal(err)
			}
			ring := newBufRing(b, 64)
			now := time.Duration(0)
			b.SetBytes(int64(ring[0].Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bf := ring[i&63]
				// Restore ECT(0) after any CE mark from the buffer's last
				// trip through the queue.
				if err := packet.SetWireECN(bf.Bytes(), ecn.ECT0); err != nil {
					b.Fatal(err)
				}
				q.Enqueue(now, NewPacket(bf.Retain()))
				if q.Len() > 30 {
					if p, ok := q.Dequeue(now); ok {
						p.TakeBuf().Release()
					}
				}
				now += 100 * time.Microsecond
			}
		})
	}
}

// TestCEMarkPathAllocFree asserts the zero-allocation property the
// benchmark reports: once the pools are warm, a packet's trip through
// restore→enqueue→mark→dequeue→release allocates nothing.
func TestCEMarkPathAllocFree(t *testing.T) {
	for _, name := range []string{"droptail", "red", "codel"} {
		q, err := New(name, 50, rand.New(rand.NewSource(2015)))
		if err != nil {
			t.Fatal(err)
		}
		ring := newBufRing(t, 64)
		now := time.Duration(0)
		i := 0
		step := func() {
			bf := ring[i&63]
			if err := packet.SetWireECN(bf.Bytes(), ecn.ECT0); err != nil {
				t.Fatal(err)
			}
			q.Enqueue(now, NewPacket(bf.Retain()))
			if q.Len() > 30 {
				if p, ok := q.Dequeue(now); ok {
					p.TakeBuf().Release()
				}
			}
			now += 100 * time.Microsecond
			i++
		}
		// Warm the queue past its operating point first, so growth of the
		// fifo's backing array is behind us.
		for i := 0; i < 200; i++ {
			step()
		}
		if n := testing.AllocsPerRun(500, step); n > 0 {
			t.Errorf("%s: pooled CE-mark path allocates %.2f objects/op, want 0", name, n)
		}
	}
}
