package aqm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// BenchmarkCEMarkThroughput measures the enqueue→mark→dequeue hot path
// of each discipline under saturation: every packet traverses the full
// admission decision and most take a congestion action. This is the
// per-packet cost a congested campaign pays at every bottleneck; the
// bench report (make bench → BENCH_2.json) tracks it across PRs.
func BenchmarkCEMarkThroughput(b *testing.B) {
	for _, name := range []string{"droptail", "red", "codel"} {
		b.Run(name, func(b *testing.B) {
			q, err := New(name, 50, rand.New(rand.NewSource(2015)))
			if err != nil {
				b.Fatal(err)
			}
			template, err := packet.BuildUDP(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
				40000, 123, 64, ecn.ECT0, 1, make([]byte, 480))
			if err != nil {
				b.Fatal(err)
			}
			wire := make([]byte, len(template))
			now := time.Duration(0)
			b.SetBytes(int64(len(template)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(wire, template) // restore ECT(0) after any CE mark
				q.Enqueue(now, &Packet{Wire: wire, Size: len(wire)})
				if q.Len() > 30 {
					q.Dequeue(now)
				}
				now += 100 * time.Microsecond
			}
		})
	}
}
