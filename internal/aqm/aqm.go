// Package aqm implements the queueing disciplines of the congestion
// substrate: bounded queues that build when offered load exceeds a
// link's serialization rate, managed by disciplines that either drop
// from the tail (DropTail) or signal congestion early (RED, CoDel).
//
// This is the machinery the paper's subject — ECN — exists to drive:
// an AQM-managed router marks ECN-capable packets CE instead of
// dropping them (RFC 3168 §5), following the connectionless
// congestion-avoidance lineage of Jain & Ramakrishnan (DEC-TR-506).
// Packets that are not ECT receive the legacy signal: loss.
//
// A Queue hangs off a netsim.Link direction with a finite
// serialization rate. The link's transmitter drives the interface from
// the event loop: Enqueue on packet arrival (where RED takes its
// accept/mark/drop decision), Dequeue at each serialization boundary
// (where CoDel takes its head-of-queue decision). All randomness (RED's
// uniformized marking draw) comes from the simulation PRNG handed to
// the constructor, so campaigns over congested topologies stay
// byte-reproducible and shard-deterministic.
package aqm

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// Packet is one queued datagram. On the simulator's hot path, shells
// come from a process-wide pool (NewPacket/NewPhantom) and carry a
// pooled wire buffer; queues own the packets they hold and release
// both shell and buffer on every drop they perform. Literal Packets
// (tests, tools) work identically but are never recycled.
type Packet struct {
	// Wire is the serialized IPv4 datagram — a view into the pooled
	// buffer for packets built by NewPacket. It is nil for phantom
	// background packets, which model cross-traffic load (they consume
	// queue space and serialization time) without deliverable bytes.
	Wire []byte
	// Size is the on-wire length in bytes (len(Wire) for real packets,
	// the modelled size for phantoms).
	Size int
	// Arrived is when the packet entered the queue; set by Enqueue and
	// used for sojourn-time accounting and CoDel's control law.
	Arrived time.Duration

	buf    *packet.Buf // owning buffer reference; nil for phantoms/literals
	pooled bool        // shell came from pktPool and returns to it
}

// Phantom reports whether the packet is background load rather than a
// deliverable datagram.
func (p *Packet) Phantom() bool { return p.Wire == nil }

var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket wraps a wire buffer as a queue packet, taking ownership of
// the caller's buffer reference. The shell comes from a pool; whoever
// ends the packet's life calls Free (drop paths) or TakeBuf
// (delivery), returning it.
func NewPacket(bf *packet.Buf) *Packet {
	p := pktPool.Get().(*Packet)
	p.Wire = bf.Bytes()
	p.Size = bf.Len()
	p.Arrived = 0
	p.buf = bf
	p.pooled = true
	return p
}

// NewPhantom returns a pooled background packet of the modelled size.
func NewPhantom(size int) *Packet {
	p := pktPool.Get().(*Packet)
	p.Wire = nil
	p.Size = size
	p.Arrived = 0
	p.buf = nil
	p.pooled = true
	return p
}

// Free ends the packet's life on a drop path: the wire buffer (if any)
// is released and a pooled shell returns to the pool. Freeing a
// literal Packet (or a queue's reusable phantom shell) only detaches
// its buffer reference.
func (p *Packet) Free() {
	p.buf.Release()
	p.buf = nil
	p.Wire = nil
	if p.pooled {
		p.pooled = false
		pktPool.Put(p)
	}
}

// TakeBuf detaches and returns the packet's wire buffer — ownership of
// the buffer reference moves to the caller — and recycles a pooled
// shell. It returns nil for phantoms and literal Packets that never
// carried a buffer.
func (p *Packet) TakeBuf() *packet.Buf {
	bf := p.buf
	p.buf = nil
	p.Wire = nil
	if p.pooled {
		p.pooled = false
		pktPool.Put(p)
	}
	return bf
}

// ECN returns the packet's codepoint. Phantom background packets are
// modelled as ECT(0) cross traffic, so congestion actions mark rather
// than drop them — background load stays constant under marking, as an
// ECN-capable aggregate's would.
func (p *Packet) ECN() ecn.Codepoint {
	if p.Wire == nil {
		return ecn.ECT0
	}
	cp, err := packet.WireECN(p.Wire)
	if err != nil {
		return ecn.NotECT
	}
	return cp
}

// markCE rewrites the packet's ECN field to CE (repairing the IPv4
// checksum for real packets). It reports whether the mark took.
func (p *Packet) markCE() bool {
	if p.Wire == nil {
		return true
	}
	return packet.SetWireECN(p.Wire, ecn.CE) == nil
}

// Stats counts a queue's lifetime activity. The Wire* fields cover only
// real (deliverable) packets — they are the ground truth the CE-mark
// report compares against receiver-side observations, excluding the
// phantom background the receiver can never see.
type Stats struct {
	Enqueued uint64 // packets admitted, including phantoms
	Dequeued uint64 // packets handed to the transmitter

	CEMarked      uint64 // congestion actions resolved by marking ECT → CE
	NotECTDropped uint64 // congestion actions resolved by dropping not-ECT
	TailDropped   uint64 // drops because the queue was full

	WireEnqueued      uint64 // real packets admitted
	WireECT           uint64 // real ECT-capable packets admitted (incl. CE-marked)
	WireCEMarked      uint64 // real packets marked CE here
	WireNotECTDropped uint64 // real not-ECT packets dropped by congestion action

	// SumBacklog accumulates the backlog (in packets) each arriving
	// packet found ahead of it; divided by Offered it is the mean
	// occupancy an arrival observed — the ground-truth congestion the
	// "verbose mode" CE-ratio estimator is checked against.
	SumBacklog uint64
	// SumSojourn accumulates queueing delay, measured at dequeue.
	SumSojourn time.Duration
}

// Offered is the total number of packets presented to the queue.
func (s Stats) Offered() uint64 {
	return s.Enqueued + s.NotECTDropped + s.TailDropped
}

// AvgBacklog is the mean backlog (packets) seen by an arriving packet.
func (s Stats) AvgBacklog() float64 {
	if n := s.Offered(); n > 0 {
		return float64(s.SumBacklog) / float64(n)
	}
	return 0
}

// WireMarkRatio is the CE-marked fraction of the real ECT packets this
// queue admitted — the ground-truth analogue of the receiver-side
// CE-ratio estimator, which also only sees delivered traffic.
func (s Stats) WireMarkRatio() float64 {
	if s.WireECT > 0 {
		return float64(s.WireCEMarked) / float64(s.WireECT)
	}
	return 0
}

// Queue is a bounded packet queue with an attached management
// discipline. The owning link calls Enqueue when a packet arrives and
// Dequeue at each serialization boundary; both receive the current
// virtual time. Enqueue reports false when the discipline dropped the
// packet. Dequeue reports false when nothing is queued (a discipline
// may internally drop head packets before returning the survivor).
//
// Ownership: Enqueue always takes the packet — a discipline that drops
// (tail drop, congestion drop, or a dequeue-time head drop) Frees the
// packet itself, so an Enqueue returning false means the packet is
// already gone. Dequeue hands ownership of the returned packet to the
// caller.
type Queue interface {
	// Name identifies the discipline ("droptail", "red", "codel").
	Name() string
	// Cap is the queue capacity in packets.
	Cap() int
	// Len is the current backlog in packets.
	Len() int
	// Bytes is the current backlog in bytes.
	Bytes() int
	Enqueue(now time.Duration, p *Packet) bool
	Dequeue(now time.Duration) (*Packet, bool)
	// EnqueuePhantoms is the batch-advance entry point for background
	// cross-traffic: it admits up to n phantom packets of the given size
	// at time now, taking exactly the same per-packet decision sequence —
	// EWMA updates, uniformization counting, PRNG draws, tail drops — as
	// n individual NewPhantom+Enqueue calls, and reports how many were
	// admitted. The lazy catch-up transmitter uses it so a replayed burst
	// of arrivals is indistinguishable, state- and stream-wise, from the
	// event-driven equivalent.
	EnqueuePhantoms(now time.Duration, size, n int) int
	// DropsAtDequeue reports whether the discipline may discard packets
	// at dequeue time (CoDel's head drop). Disciplines that decide a
	// packet's fate entirely at enqueue (DropTail, RED) let the link
	// transmitter precompute a queued packet's serialization schedule
	// exactly; head-dropping disciplines cannot, and fall back to
	// event-driven boundaries while foreground packets are queued.
	DropsAtDequeue() bool
	Stats() Stats
	// ResetTransient returns the discipline's control state (EWMA
	// averages, uniformization counters, dropping-state machines) to its
	// initial value, as a long-idle queue converges to anyway. Queued
	// packets and lifetime Stats are untouched. The campaign engine
	// calls it at trace boundaries so a trace's marking behaviour
	// depends only on the trace's own traffic, never on which traces
	// happened to share the simulator — the invariant that lets traces
	// be regrouped into shards without changing a byte of output.
	ResetTransient()
}

// New constructs a discipline by name: "droptail", "red", "codel". An
// empty name selects RED, the substrate default. capacity is in
// packets; rng must be the simulation PRNG (RED draws its marking
// uniformization from it) and may be nil for deterministic disciplines.
func New(name string, capacity int, rng *rand.Rand) (Queue, error) {
	switch name {
	case "droptail":
		return NewDropTail(capacity), nil
	case "", "red":
		return NewRED(capacity, rng), nil
	case "codel":
		return NewCoDel(capacity), nil
	default:
		return nil, fmt.Errorf("aqm: unknown discipline %q (want droptail, red or codel)", name)
	}
}

// entry is one queued slot. Foreground packets are retained through
// pkt; phantom background packets are stored as pure (size, arrival-
// time) tuples — no shell, no pointer — so a congested campaign can
// cycle millions of background packets through a queue without touching
// the allocator, the GC's pointer maps, or any pool.
type entry struct {
	pkt     *Packet // nil for phantom background entries
	size    int32
	arrived time.Duration
}

// fifo is the bounded FIFO buffer shared by every discipline. It keeps
// the Stats bookkeeping in one place; disciplines layer their
// congestion actions on top. The backing array is reused (compacted in
// place), so the queue itself never allocates in steady state.
type fifo struct {
	pkts    []entry
	head    int
	bytes   int
	maxPkts int
	stats   Stats
	// ingress and egress are the queue's reusable phantom shells:
	// EnqueuePhantoms offers arrivals through ingress (admit consumes
	// the shell into a tuple entry), and pop serves a phantom through
	// egress — the transmitter holds at most one dequeued phantom at a
	// time, completing its serialization before the next pop.
	ingress Packet
	egress  Packet
}

func newFifo(capacity int) fifo {
	if capacity < 1 {
		capacity = 1
	}
	return fifo{maxPkts: capacity}
}

func (f *fifo) Cap() int     { return f.maxPkts }
func (f *fifo) Len() int     { return len(f.pkts) - f.head }
func (f *fifo) Bytes() int   { return f.bytes }
func (f *fifo) Stats() Stats { return f.stats }

// admit records and appends an accepted packet. Callers have already
// taken the discipline's decision. A phantom is admitted as a tuple
// entry and its shell freed; a foreground packet is retained.
func (f *fifo) admit(now time.Duration, p *Packet) {
	e := entry{size: int32(p.Size), arrived: now}
	f.stats.Enqueued++
	if !p.Phantom() {
		p.Arrived = now
		e.pkt = p
		f.stats.WireEnqueued++
		if p.ECN().IsECT() {
			f.stats.WireECT++
		}
	} else {
		p.Free() // the tuple entry replaces the shell
	}
	f.pkts = append(f.pkts, e)
	f.bytes += int(e.size)
}

// pop removes the head packet, maintaining sojourn accounting. Phantom
// entries are served through the reusable egress shell.
func (f *fifo) pop(now time.Duration) (*Packet, bool) {
	if f.Len() == 0 {
		return nil, false
	}
	e := f.pkts[f.head]
	f.pkts[f.head] = entry{}
	f.head++
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if f.head > 64 && f.head*2 >= len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	f.bytes -= int(e.size)
	f.stats.Dequeued++
	f.stats.SumSojourn += now - e.arrived
	p := e.pkt
	if p == nil {
		// Serve the phantom through the reusable egress shell. Wire and
		// buf are permanently nil on it (Free never populates them), so
		// only the tuple fields need refreshing.
		p = &f.egress
		p.Size = int(e.size)
		p.Arrived = e.arrived
	}
	return p, true
}

// observeArrival records the backlog an arriving packet found.
func (f *fifo) observeArrival() {
	f.stats.SumBacklog += uint64(f.Len())
}

// enqueuePhantoms is the generic batch-advance fallback: a plain loop
// over the discipline's own Enqueue through the reusable ingress shell.
// The disciplines implement native batch entry points that run the same
// decision arithmetic directly on tuple entries; the property tests in
// aqm_test.go hold batch and single-step advancement equal, which keeps
// native paths honest against this definition.
func enqueuePhantoms(q Queue, f *fifo, now time.Duration, size, n int) int {
	admitted := 0
	f.ingress = Packet{Size: size}
	for i := 0; i < n; i++ {
		if q.Enqueue(now, &f.ingress) {
			admitted++
		}
	}
	return admitted
}

// admitPhantom appends a phantom tuple entry, with exactly admit's
// bookkeeping for a phantom packet.
func (f *fifo) admitPhantom(now time.Duration, size int) {
	f.stats.Enqueued++
	f.pkts = append(f.pkts, entry{size: int32(size), arrived: now})
	f.bytes += size
}

// enqueuePhantomsTailDrop is the native batch loop for disciplines
// whose enqueue law is pure tail-drop (DropTail, CoDel — their control
// intelligence lives elsewhere): observe, drop when full, admit a
// tuple entry otherwise.
func (f *fifo) enqueuePhantomsTailDrop(now time.Duration, size, n int) int {
	admitted := 0
	for i := 0; i < n; i++ {
		f.observeArrival()
		if f.Len() >= f.Cap() {
			f.tailDrop()
			continue
		}
		f.admitPhantom(now, size)
		admitted++
	}
	return admitted
}

// congest applies the RFC 3168 congestion action to p: ECT-capable
// packets are CE-marked (and survive), not-ECT packets take the legacy
// signal and are dropped. It reports whether the packet survived.
func (f *fifo) congest(p *Packet) bool {
	if cp := p.ECN(); cp.IsECT() {
		if cp != ecn.CE && p.markCE() {
			f.stats.CEMarked++
			if !p.Phantom() {
				f.stats.WireCEMarked++
			}
		}
		return true
	}
	f.stats.NotECTDropped++
	if !p.Phantom() {
		f.stats.WireNotECTDropped++
	}
	return false
}

// tailDrop records a full-queue drop.
func (f *fifo) tailDrop() {
	f.stats.TailDropped++
}

// headDropped compensates the counters when a discipline discards a
// packet it had previously admitted (CoDel's dequeue-time drop): the
// packet must count exactly once in Offered — as the congestion drop
// congest() just recorded — and not as Dequeued, which means "handed
// to the transmitter".
func (f *fifo) headDropped(p *Packet) {
	f.stats.Dequeued--
	f.stats.Enqueued--
	if !p.Phantom() {
		f.stats.WireEnqueued--
	}
}
