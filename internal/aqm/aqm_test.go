package aqm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// wirePacket builds a real UDP datagram with the given ECN codepoint.
func wirePacket(t testing.TB, cp ecn.Codepoint) []byte {
	t.Helper()
	wire, err := packet.BuildUDP(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
		40000, 123, 64, cp, 1, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestFactory(t *testing.T) {
	for _, name := range []string{"", "red", "droptail", "codel"} {
		q, err := New(name, 16, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if q.Cap() != 16 {
			t.Errorf("New(%q).Cap() = %d, want 16", name, q.Cap())
		}
	}
	if _, err := New("fq-codel", 16, nil); err == nil {
		t.Error("unknown discipline should error")
	}
}

func TestDropTailBounds(t *testing.T) {
	q := NewDropTail(4)
	for i := 0; i < 4; i++ {
		if !q.Enqueue(0, NewPhantom(100)) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if q.Enqueue(0, NewPhantom(100)) {
		t.Fatal("enqueue accepted above capacity")
	}
	if q.Len() != 4 || q.Bytes() != 400 {
		t.Fatalf("Len/Bytes = %d/%d, want 4/400", q.Len(), q.Bytes())
	}
	st := q.Stats()
	if st.Enqueued != 4 || st.TailDropped != 1 || st.CEMarked != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < 4; i++ {
		if _, ok := q.Dequeue(time.Second); !ok {
			t.Fatalf("dequeue %d empty", i)
		}
	}
	if _, ok := q.Dequeue(time.Second); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
	if got := q.Stats().SumSojourn; got != 4*time.Second {
		t.Fatalf("SumSojourn = %v, want 4s", got)
	}
}

// TestREDCongestionActions drives RED's average above MaxTh and checks
// the RFC 3168 action split: ECT packets are CE-marked in the wire
// bytes (with a valid checksum), not-ECT packets are dropped.
func TestREDCongestionActions(t *testing.T) {
	q := NewRED(32, rand.New(rand.NewSource(7)))
	// Saturate the EWMA: a standing backlog above MaxTh.
	for i := 0; i < 200; i++ {
		q.Enqueue(0, NewPhantom(512))
		if q.Len() > int(q.MaxTh)+2 {
			q.Dequeue(0)
		}
	}
	if q.Avg() < q.MaxTh {
		t.Fatalf("avg = %.1f, want ≥ maxTh %.1f", q.Avg(), q.MaxTh)
	}

	ect := wirePacket(t, ecn.ECT0)
	p := &Packet{Wire: ect, Size: len(ect)}
	if !q.Enqueue(0, p) {
		t.Fatal("ECT packet dropped; want CE-marked and admitted")
	}
	if cp, err := packet.WireECN(ect); err != nil || cp != ecn.CE {
		t.Fatalf("ECT packet codepoint = %v (%v), want CE", cp, err)
	}
	if _, _, err := packet.ParseIPv4(ect); err != nil {
		t.Fatalf("marked packet no longer parses: %v", err)
	}

	notECT := wirePacket(t, ecn.NotECT)
	if q.Enqueue(0, &Packet{Wire: notECT, Size: len(notECT)}) {
		t.Fatal("not-ECT packet admitted; want dropped by congestion action")
	}

	st := q.Stats()
	if st.WireCEMarked == 0 || st.WireNotECTDropped == 0 {
		t.Fatalf("stats = %+v: want wire CE mark and not-ECT drop", st)
	}
}

// TestREDNoActionWhenIdle checks that a lightly loaded RED queue leaves
// traffic alone: below MinTh nothing is marked or dropped.
func TestREDNoActionWhenIdle(t *testing.T) {
	q := NewRED(32, rand.New(rand.NewSource(7)))
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		wire := wirePacket(t, ecn.ECT0)
		if !q.Enqueue(now, &Packet{Wire: wire, Size: len(wire)}) {
			t.Fatal("packet dropped on an idle queue")
		}
		q.Dequeue(now + time.Millisecond)
		now += 10 * time.Millisecond
	}
	st := q.Stats()
	if st.CEMarked != 0 || st.NotECTDropped != 0 {
		t.Fatalf("idle queue took congestion actions: %+v", st)
	}
}

// TestREDMarkRatioMonotoneInLoad runs the same arrival/service pattern
// at increasing offered load and checks the CE-mark ratio never
// decreases — the property the scenario-level CE report relies on.
func TestREDMarkRatioMonotoneInLoad(t *testing.T) {
	ratio := func(arrivalsPerService int) float64 {
		q := NewRED(50, rand.New(rand.NewSource(2015)))
		now := time.Duration(0)
		for step := 0; step < 2000; step++ {
			for a := 0; a < arrivalsPerService; a++ {
				wire := wirePacket(t, ecn.ECT0)
				q.Enqueue(now, &Packet{Wire: wire, Size: len(wire)})
			}
			q.Dequeue(now)
			now += 4 * time.Millisecond
		}
		return q.Stats().WireMarkRatio()
	}
	prev := -1.0
	var ratios []float64
	for _, load := range []int{1, 2, 3, 5} {
		r := ratio(load)
		ratios = append(ratios, r)
		if r < prev {
			t.Fatalf("mark ratio not monotone in load: %v", ratios)
		}
		prev = r
	}
	if ratios[0] >= ratios[len(ratios)-1] {
		t.Fatalf("mark ratio flat across loads: %v", ratios)
	}
}

// TestREDDeterminism: identical seeds must reproduce the exact marking
// pattern — the property that keeps congested campaigns byte-identical.
func TestREDDeterminism(t *testing.T) {
	run := func() []ecn.Codepoint {
		q := NewRED(16, rand.New(rand.NewSource(99)))
		var out []ecn.Codepoint
		for i := 0; i < 500; i++ {
			wire := wirePacket(t, ecn.ECT0)
			if q.Enqueue(0, &Packet{Wire: wire, Size: len(wire)}) {
				cp, _ := packet.WireECN(wire)
				out = append(out, cp)
			}
			if i%3 == 0 {
				q.Dequeue(0)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("marking diverges at packet %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestCoDelMarksPersistentQueue holds sojourn above target past an
// interval and checks ECT heads get marked while not-ECT heads drop.
func TestCoDelMarksPersistentQueue(t *testing.T) {
	q := NewCoDel(64)
	now := time.Duration(0)
	marked := 0
	for step := 0; step < 400; step++ {
		cp := ecn.ECT0
		if step%4 == 3 {
			cp = ecn.NotECT
		}
		wire := wirePacket(t, cp)
		q.Enqueue(now, &Packet{Wire: wire, Size: len(wire)})
		// Dequeue lagging behind arrivals: standing queue, 20ms sojourn.
		if step >= 4 {
			if p, ok := q.Dequeue(now); ok && !p.Phantom() {
				if got, _ := packet.WireECN(p.Wire); got == ecn.CE {
					marked++
				}
			}
		}
		now += 5 * time.Millisecond
	}
	st := q.Stats()
	if marked == 0 {
		t.Fatal("CoDel never CE-marked a persistently queued ECT packet")
	}
	if st.WireCEMarked == 0 {
		t.Fatalf("stats lack CE marks: %+v", st)
	}
	if st.WireNotECTDropped == 0 {
		t.Fatalf("CoDel never dropped a not-ECT head: %+v", st)
	}
}

// TestCoDelDequeueDropAccounting: a not-ECT packet dropped by the
// control law at dequeue must count exactly once in Offered (as a
// congestion drop) and not as Dequeued — the invariant the CE-mark
// report's occupancy denominator relies on.
func TestCoDelDequeueDropAccounting(t *testing.T) {
	q := NewCoDel(64)
	now := time.Duration(0)
	const n = 400
	for step := 0; step < n; step++ {
		cp := ecn.NotECT
		if step%2 == 0 {
			cp = ecn.ECT0
		}
		wire := wirePacket(t, cp)
		q.Enqueue(now, &Packet{Wire: wire, Size: len(wire)})
		if step >= 4 {
			q.Dequeue(now) // sustained 20ms sojourn → dropping state
		}
		now += 5 * time.Millisecond
	}
	st := q.Stats()
	if st.NotECTDropped == 0 {
		t.Fatal("control law never dropped a not-ECT head")
	}
	if got, want := st.Offered(), uint64(n); got != want {
		t.Fatalf("Offered = %d, want exactly %d offered packets", got, want)
	}
	if st.Dequeued+st.NotECTDropped+st.TailDropped+uint64(q.Len()) != uint64(n) {
		t.Fatalf("conservation violated: dequeued %d + dropped %d+%d + queued %d != %d",
			st.Dequeued, st.NotECTDropped, st.TailDropped, q.Len(), n)
	}
}

// TestCoDelQuietBelowTarget: a short queue must pass untouched.
func TestCoDelQuietBelowTarget(t *testing.T) {
	q := NewCoDel(64)
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		wire := wirePacket(t, ecn.ECT0)
		q.Enqueue(now, &Packet{Wire: wire, Size: len(wire)})
		q.Dequeue(now + time.Millisecond) // 1ms sojourn < 5ms target
		now += 10 * time.Millisecond
	}
	if st := q.Stats(); st.CEMarked != 0 || st.NotECTDropped != 0 {
		t.Fatalf("quiet CoDel took congestion actions: %+v", st)
	}
}

// TestPhantomPackets: phantoms count as ECT(0) background, are marked
// not dropped, and never appear in the Wire* ground-truth counters.
func TestPhantomPackets(t *testing.T) {
	q := NewRED(32, rand.New(rand.NewSource(7)))
	for i := 0; i < 300; i++ {
		q.Enqueue(0, NewPhantom(512))
		if q.Len() > 20 {
			q.Dequeue(0)
		}
	}
	st := q.Stats()
	if st.CEMarked == 0 {
		t.Fatal("saturated RED never marked phantom background")
	}
	if st.WireEnqueued != 0 || st.WireCEMarked != 0 || st.WireECT != 0 {
		t.Fatalf("phantoms leaked into wire counters: %+v", st)
	}
	if st.NotECTDropped != 0 {
		t.Fatalf("phantom background was dropped, not marked: %+v", st)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Enqueued: 8, TailDropped: 2, SumBacklog: 30, WireECT: 10, WireCEMarked: 4}
	if s.Offered() != 10 {
		t.Errorf("Offered = %d", s.Offered())
	}
	if s.AvgBacklog() != 3 {
		t.Errorf("AvgBacklog = %v", s.AvgBacklog())
	}
	if s.WireMarkRatio() != 0.4 {
		t.Errorf("WireMarkRatio = %v", s.WireMarkRatio())
	}
	var zero Stats
	if zero.AvgBacklog() != 0 || zero.WireMarkRatio() != 0 {
		t.Error("zero stats should yield zero ratios")
	}
}

// TestResetTransient: the reset clears control state (so trace-boundary
// marking behaviour is history-free) but preserves lifetime stats and
// queued packets.
func TestResetTransient(t *testing.T) {
	t.Run("red", func(t *testing.T) {
		q := NewRED(16, rand.New(rand.NewSource(1)))
		now := time.Duration(0)
		for i := 0; i < 64; i++ {
			q.Enqueue(now, &Packet{Wire: wirePacket(t, ecn.ECT0), Size: 100})
			if q.Len() > 12 {
				if p, ok := q.Dequeue(now); ok {
					p.Free()
				}
			}
			now += time.Millisecond
		}
		if q.Avg() == 0 {
			t.Fatal("EWMA never built")
		}
		stats := q.Stats()
		backlog := q.Len()
		q.ResetTransient()
		if q.Avg() != 0 || q.count != 0 || q.idle {
			t.Errorf("control state survives reset: avg=%v count=%d idle=%v", q.Avg(), q.count, q.idle)
		}
		if q.Stats() != stats {
			t.Error("lifetime stats must survive the reset")
		}
		if q.Len() != backlog {
			t.Errorf("queued packets lost: %d vs %d", q.Len(), backlog)
		}
		// Behaviour after reset matches a fresh queue fed the same input:
		// the very next arrival sees avg rebuilt from zero.
		q.Enqueue(now, &Packet{Wire: wirePacket(t, ecn.ECT0), Size: 100})
		if want := q.Wq * float64(backlog); q.Avg() != want {
			t.Errorf("post-reset avg = %v, want %v", q.Avg(), want)
		}
	})
	t.Run("codel", func(t *testing.T) {
		q := NewCoDel(64)
		now := time.Duration(0)
		for i := 0; i < 64; i++ {
			q.Enqueue(now, &Packet{Wire: wirePacket(t, ecn.ECT0), Size: 100})
		}
		// Drain slowly so sojourn stays above target and dropping engages.
		now += 200 * time.Millisecond
		for i := 0; i < 32; i++ {
			if p, ok := q.Dequeue(now); ok {
				p.Free()
			}
			now += 20 * time.Millisecond
		}
		if !q.dropping {
			t.Fatal("CoDel never entered dropping state")
		}
		q.ResetTransient()
		if q.dropping || q.firstAbove != 0 || q.dropNext != 0 || q.count != 0 {
			t.Error("CoDel control state survives reset")
		}
	})
	t.Run("droptail", func(t *testing.T) {
		q := NewDropTail(4)
		q.Enqueue(0, &Packet{Wire: wirePacket(t, ecn.ECT0), Size: 100})
		stats := q.Stats()
		q.ResetTransient() // memoryless: must be a no-op
		if q.Stats() != stats || q.Len() != 1 {
			t.Error("DropTail reset changed state")
		}
	})
}
