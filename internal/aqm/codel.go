package aqm

import (
	"math"
	"time"
)

// CoDel is Controlled Delay (Nichols & Jacobson 2012): instead of
// watching occupancy it watches how long packets actually wait. When
// the head-of-queue sojourn time has exceeded Target for at least one
// Interval, it enters dropping state and takes congestion actions at a
// rate that increases with the square root of the action count. As
// everywhere in this substrate, the action is CE-mark for ECT packets
// and drop for not-ECT ones.
type CoDel struct {
	fifo

	// Target is the acceptable standing queue delay (default 5ms).
	Target time.Duration
	// Interval is the sliding window over which the delay must stay
	// above Target before acting (default 100ms).
	Interval time.Duration

	firstAbove time.Duration // when sojourn first exceeded Target; 0 = not above
	dropNext   time.Duration // next scheduled action while dropping
	count      int           // actions in the current dropping state
	dropping   bool
}

// NewCoDel returns a CoDel queue with the published default control
// constants and a hard capacity of capacity packets.
func NewCoDel(capacity int) *CoDel {
	return &CoDel{
		fifo:     newFifo(capacity),
		Target:   5 * time.Millisecond,
		Interval: 100 * time.Millisecond,
	}
}

// Name implements Queue.
func (q *CoDel) Name() string { return "codel" }

// ResetTransient implements Queue: leaves dropping state and forgets the
// above-target window, as an emptied queue does on its own.
func (q *CoDel) ResetTransient() {
	q.firstAbove = 0
	q.dropNext = 0
	q.count = 0
	q.dropping = false
}

// Enqueue implements Queue: CoDel admits everything short of a full
// buffer; its intelligence runs at dequeue.
func (q *CoDel) Enqueue(now time.Duration, p *Packet) bool {
	q.observeArrival()
	if q.Len() >= q.Cap() {
		q.tailDrop()
		p.Free()
		return false
	}
	q.admit(now, p)
	return true
}

// EnqueuePhantoms implements Queue: CoDel admits everything short of a
// full buffer — its intelligence runs at dequeue — so the enqueue law
// is the shared tail-drop batch loop.
func (q *CoDel) EnqueuePhantoms(now time.Duration, size, n int) int {
	return q.enqueuePhantomsTailDrop(now, size, n)
}

// DropsAtDequeue implements Queue: the control law may discard not-ECT
// heads inside Dequeue, so a queued packet's serialization time is not
// knowable at enqueue.
func (q *CoDel) DropsAtDequeue() bool { return true }

// Dequeue implements Queue: the control law runs here, on the packet
// that has waited longest.
func (q *CoDel) Dequeue(now time.Duration) (*Packet, bool) {
	p, ok := q.pop(now)
	if !ok {
		q.firstAbove = 0
		q.dropping = false
		return nil, false
	}
	sojourn := now - p.Arrived

	if sojourn < q.Target || q.Len() == 0 {
		// Below target (or queue emptied): leave dropping state.
		q.firstAbove = 0
		q.dropping = false
		return p, true
	}

	if q.firstAbove == 0 {
		q.firstAbove = now + q.Interval
		return p, true
	}
	if !q.dropping {
		if now >= q.firstAbove {
			q.dropping = true
			q.count = 1
			q.dropNext = now + q.controlInterval()
			if !q.congest(p) {
				q.headDropped(p)
				p.Free()
				return q.Dequeue(now) // not-ECT head dropped; try the next
			}
		}
		return p, true
	}
	if now >= q.dropNext {
		q.count++
		q.dropNext = now + q.controlInterval()
		if !q.congest(p) {
			q.headDropped(p)
			p.Free()
			return q.Dequeue(now)
		}
	}
	return p, true
}

// controlInterval is Interval/sqrt(count), the CoDel pacing law.
func (q *CoDel) controlInterval() time.Duration {
	return time.Duration(float64(q.Interval) / math.Sqrt(float64(q.count)))
}
