package aqm

import "time"

// DropTail is the baseline discipline: admit until full, then drop
// arrivals. It never marks CE — the congestion signal it produces is
// loss alone, which is exactly the pre-AQM Internet the paper's
// introduction argues against for interactive media.
type DropTail struct {
	fifo
}

// NewDropTail returns a tail-drop queue holding capacity packets.
func NewDropTail(capacity int) *DropTail {
	return &DropTail{fifo: newFifo(capacity)}
}

// Name implements Queue.
func (q *DropTail) Name() string { return "droptail" }

// ResetTransient implements Queue: DropTail is memoryless.
func (q *DropTail) ResetTransient() {}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(now time.Duration, p *Packet) bool {
	q.observeArrival()
	if q.Len() >= q.Cap() {
		q.tailDrop()
		p.Free()
		return false
	}
	q.admit(now, p)
	return true
}

// EnqueuePhantoms implements Queue: DropTail's enqueue law is pure
// tail-drop, shared with CoDel's batch loop.
func (q *DropTail) EnqueuePhantoms(now time.Duration, size, n int) int {
	return q.enqueuePhantomsTailDrop(now, size, n)
}

// DropsAtDequeue implements Queue: DropTail decides at enqueue only.
func (q *DropTail) DropsAtDequeue() bool { return false }

// Dequeue implements Queue.
func (q *DropTail) Dequeue(now time.Duration) (*Packet, bool) {
	return q.pop(now)
}
