package aqm

import (
	"math"
	"math/rand"
	"time"
)

// RED is Random Early Detection (Floyd & Jacobson 1993), the classic
// realisation of the Jain/Ramakrishnan connectionless congestion-
// avoidance bit: it tracks an EWMA of the queue occupancy and, between
// a minimum and maximum threshold, takes a congestion action on a
// randomly uniformized subset of arrivals — CE-marking ECT packets per
// RFC 3168, dropping not-ECT ones. Above the maximum threshold every
// arrival receives the action; a full queue tail-drops regardless of
// ECN, as a real router must.
type RED struct {
	fifo

	// MinTh and MaxTh are the EWMA occupancy thresholds, in packets.
	MinTh, MaxTh float64
	// MaxP is the action probability as the average reaches MaxTh.
	MaxP float64
	// Wq is the EWMA weight applied per arrival.
	Wq float64
	// MeanPktTime is the typical serialization time used to age the
	// average across idle periods (RED's m = idle/MeanPktTime rule).
	MeanPktTime time.Duration

	rng *rand.Rand

	avg       float64
	count     int // arrivals since the last action, for uniformization
	idleSince time.Duration
	idle      bool
}

// NewRED returns a RED queue with the conventional configuration scaled
// to the capacity: thresholds at 1/8 and 1/2 of the buffer, maxP 0.1.
// rng must be the simulation PRNG so marking stays reproducible.
func NewRED(capacity int, rng *rand.Rand) *RED {
	if capacity < 4 {
		capacity = 4
	}
	minTh := float64(capacity) / 8
	if minTh < 2 {
		minTh = 2
	}
	maxTh := float64(capacity) / 2
	if maxTh <= minTh {
		maxTh = minTh * 3
	}
	return &RED{
		fifo:        newFifo(capacity),
		MinTh:       minTh,
		MaxTh:       maxTh,
		MaxP:        0.1,
		Wq:          0.02,
		MeanPktTime: 4 * time.Millisecond,
		rng:         rng,
	}
}

// Name implements Queue.
func (q *RED) Name() string { return "red" }

// Avg exposes the current EWMA occupancy (for tests and reports).
func (q *RED) Avg() float64 { return q.avg }

// ResetTransient implements Queue: clears the EWMA average, the
// uniformization counter and the idle-aging state. A queue left idle
// for long decays to exactly this state (the aging power underflows to
// zero), so the reset canonicalises "long idle" rather than inventing a
// new regime.
func (q *RED) ResetTransient() {
	q.avg = 0
	q.count = 0
	q.idle = false
	q.idleSince = 0
}

// Enqueue implements Queue: the accept/mark/drop decision point.
func (q *RED) Enqueue(now time.Duration, p *Packet) bool {
	full, action := q.arrive(now)
	if full {
		q.tailDrop()
		p.Free()
		return false
	}
	if action && !q.congest(p) {
		p.Free()
		return false // not-ECT: the congestion action was a drop
	}
	q.admit(now, p)
	return true
}

// arrive runs the per-arrival control law — backlog observation, idle
// aging, the EWMA update, and (below capacity) the uniformized action
// decision with its PRNG draw. Both Enqueue and EnqueuePhantoms run
// exactly this, so the two entry points cannot drift.
func (q *RED) arrive(now time.Duration) (full, action bool) {
	q.observeArrival()

	// Age the average across an idle period: the queue was empty, so
	// the average decays as if m small packets had passed (RED §11).
	if q.idle {
		m := float64(now-q.idleSince) / float64(q.MeanPktTime)
		if m > 0 {
			q.avg *= math.Pow(1-q.Wq, m)
		}
		q.idle = false
	}
	q.avg += q.Wq * (float64(q.Len()) - q.avg)

	if q.Len() >= q.Cap() {
		return true, false // tail drop territory: no action draw
	}

	switch {
	case q.avg >= q.MaxTh:
		action = true
		q.count = 0
	case q.avg > q.MinTh:
		q.count++
		pb := q.MaxP * (q.avg - q.MinTh) / (q.MaxTh - q.MinTh)
		var pa float64
		if d := 1 - float64(q.count)*pb; d > 0 {
			pa = pb / d
		} else {
			pa = 1
		}
		if pa >= 1 || (q.rng != nil && q.rng.Float64() < pa) {
			action = true
			q.count = 0
		}
	default:
		q.count = 0
	}
	return false, action
}

// EnqueuePhantoms implements Queue: n phantom arrivals at now, each
// taking the full per-arrival RED decision via the shared arrive law —
// identically to n single Enqueue calls, the property
// TestBatchAdvanceEqualsSingleSteps pins. A phantom is always ECT(0),
// so a congestion action is always a mark, never a wire rewrite or a
// drop, and admission is a tuple entry.
func (q *RED) EnqueuePhantoms(now time.Duration, size, n int) int {
	admitted := 0
	for i := 0; i < n; i++ {
		full, action := q.arrive(now)
		if full {
			q.tailDrop()
			continue
		}
		if action {
			q.stats.CEMarked++
		}
		q.admitPhantom(now, size)
		admitted++
	}
	return admitted
}

// DropsAtDequeue implements Queue: RED decides at enqueue only.
func (q *RED) DropsAtDequeue() bool { return false }

// Dequeue implements Queue.
func (q *RED) Dequeue(now time.Duration) (*Packet, bool) {
	p, ok := q.pop(now)
	if ok && q.Len() == 0 {
		q.idle = true
		q.idleSince = now
	}
	return p, ok
}
