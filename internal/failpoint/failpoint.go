// Package failpoint is the test-only fault-injection layer: named
// points in production code paths that tests and crash harnesses arm
// to fail on purpose. A point's name encodes its site and failure mode
// (e.g. "server.accept-result:crash-after-journal"); unarmed points
// cost one mutex-free map lookup behind an armed-anywhere fast path
// and change nothing.
//
// Two arming mechanisms:
//
//   - Environment: REPRO_FAILPOINT lists comma-separated point names.
//     A point armed this way crashes the process the first time it is
//     hit — os.Exit(137), the conventional SIGKILL status, with no
//     deferred cleanup, no flushes, no graceful anything — which is
//     how the crash-smoke CI job kills a real coordinator at an exact
//     instruction boundary instead of racing a timer against kill -9.
//   - Hooks: tests running in-process call SetHook(name, fn). The
//     hook's returned error is surfaced by Check at the site, letting
//     a test simulate "the work before this point happened, the work
//     after it did not" without losing the process.
//
// Production builds carry the points; they are inert unless armed, and
// nothing outside tests and the crash harness sets REPRO_FAILPOINT.
package failpoint

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	mu sync.Mutex
	// armed holds the env-armed crash points; hooks the test-installed
	// callbacks. Both are keyed by the full point name.
	armed map[string]bool
	hooks map[string]func() error
	// anyArmed lets Check bail without the mutex when nothing anywhere
	// is armed — the production fast path.
	anyArmed atomic.Bool
	initOnce sync.Once
)

// initFromEnv parses REPRO_FAILPOINT once, at first use.
func initFromEnv() {
	initOnce.Do(func() {
		mu.Lock()
		defer mu.Unlock()
		if armed == nil {
			armed = make(map[string]bool)
		}
		if hooks == nil {
			hooks = make(map[string]func() error)
		}
		for _, name := range strings.Split(os.Getenv("REPRO_FAILPOINT"), ",") {
			if name = strings.TrimSpace(name); name != "" {
				armed[name] = true
				anyArmed.Store(true)
			}
		}
	})
}

// Check fires the named point. Unarmed, it returns nil. Armed via a
// test hook, it returns the hook's error (nil lets execution continue,
// so hooks can be one-shot). Armed via REPRO_FAILPOINT, it crashes the
// process on the spot.
func Check(name string) error {
	if !anyArmed.Load() {
		initFromEnv()
		if !anyArmed.Load() {
			return nil
		}
	}
	mu.Lock()
	hook := hooks[name]
	crash := armed[name]
	mu.Unlock()
	if hook != nil {
		return hook()
	}
	if crash {
		// An abrupt exit: stderr is best-effort, nothing is drained.
		fmt.Fprintf(os.Stderr, "failpoint: crashing at %s\n", name)
		os.Exit(137)
	}
	return nil
}

// SetHook arms a point with an in-process callback and returns its
// disarm function. The callback runs on whatever goroutine hits the
// point; it must be safe for that.
func SetHook(name string, fn func() error) (remove func()) {
	initFromEnv()
	mu.Lock()
	defer mu.Unlock()
	hooks[name] = fn
	anyArmed.Store(true)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		delete(hooks, name)
		if len(hooks) == 0 && len(armed) == 0 {
			anyArmed.Store(false)
		}
	}
}

// The journal/recovery points the coordinator places. Names are part
// of the crash-harness contract (scripts/crash_smoke.sh arms them by
// string), so treat them like API.
const (
	// AcceptResultAfterJournal sits between an accepted shard result's
	// fsync'd journal append and the in-memory state update + 200.
	// Crashing here proves the WAL discipline: the restarted
	// coordinator owns the result, the worker never got its ack.
	AcceptResultAfterJournal = "server.accept-result:crash-after-journal"
	// FinalizeBeforeStore sits between the last accepted shard and the
	// merged run's filing. Crashing here leaves a complete journal and
	// no store entry; recovery must finish the merge by itself.
	FinalizeBeforeStore = "server.finalize:crash-before-store"
	// CompactMidSwap sits between a journal checkpoint segment's atomic
	// rename and the unlink of the segments it supersedes. Crashing here
	// leaves BOTH the old segment chain and the new checkpoint on disk;
	// recovery must pick the checkpoint and tidy the stale chain.
	CompactMidSwap = "server.compact:crash-mid-swap"
)
