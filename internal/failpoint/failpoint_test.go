package failpoint

import (
	"errors"
	"testing"
)

// The env-crash path (os.Exit(137)) is exercised end to end by
// scripts/crash_smoke.sh; in-process tests cover the hook mechanics.

func TestUnarmedPointIsNil(t *testing.T) {
	if err := Check("nobody.armed:this"); err != nil {
		t.Fatalf("unarmed point returned %v", err)
	}
}

func TestHookFiresAndDisarms(t *testing.T) {
	boom := errors.New("injected")
	calls := 0
	remove := SetHook("test.point:hook", func() error {
		calls++
		return boom
	})
	if err := Check("test.point:hook"); !errors.Is(err, boom) {
		t.Fatalf("armed point returned %v, want the hook's error", err)
	}
	// Other points stay unarmed.
	if err := Check("test.other:point"); err != nil {
		t.Fatalf("unrelated point returned %v", err)
	}
	remove()
	if err := Check("test.point:hook"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1", calls)
	}
}

func TestNilReturningHookContinues(t *testing.T) {
	// A hook may return nil to let execution continue — the one-shot
	// pattern: fail the first pass, observe the second.
	fired := false
	remove := SetHook("test.point:oneshot", func() error {
		if fired {
			return nil
		}
		fired = true
		return errors.New("first pass fails")
	})
	defer remove()
	if err := Check("test.point:oneshot"); err == nil {
		t.Fatal("first pass should fail")
	}
	if err := Check("test.point:oneshot"); err != nil {
		t.Fatalf("second pass returned %v, want nil", err)
	}
}
