package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/packet"
)

func sampleDataset() *Dataset {
	return &Dataset{Traces: []Trace{
		{
			Vantage: "Perkins home", Batch: 1, Index: 0,
			Observations: []Observation{
				{Server: packet.MustParseAddr("16.9.2.0"), UDPReachable: true, UDPECTReachable: true, UDPAttempts: 1, TCPReachable: true, TCPECN: true, HTTPStatus: 302},
				{Server: packet.MustParseAddr("16.9.2.1"), UDPReachable: true, UDPECTReachable: false, UDPAttempts: 2},
			},
		},
		{
			Vantage: "EC2 Tokyo", Batch: 2, Index: 1,
			Observations: []Observation{
				{Server: packet.MustParseAddr("16.9.2.0"), UDPReachable: false},
			},
		},
	}}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 2 {
		t.Fatalf("traces = %d", len(got.Traces))
	}
	o := got.Traces[0].Observations[0]
	if o.Server != packet.MustParseAddr("16.9.2.0") || !o.UDPReachable || !o.TCPECN || o.HTTPStatus != 302 {
		t.Errorf("observation = %+v", o)
	}
	if got.Traces[1].Vantage != "EC2 Tokyo" || got.Traces[1].Batch != 2 {
		t.Errorf("trace meta = %+v", got.Traces[1])
	}
}

func TestAddressesSerializeAsDottedQuad(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"16.9.2.0"`) {
		t.Errorf("addresses not dotted-quad: %s", buf.String()[:120])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	d, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 0 {
		t.Error("phantom traces")
	}
}

func TestCountReachable(t *testing.T) {
	d := sampleDataset()
	udp, udpECT, tcp, tcpECN := d.Traces[0].CountReachable()
	if udp != 2 || udpECT != 1 || tcp != 1 || tcpECN != 1 {
		t.Errorf("counts = %d,%d,%d,%d", udp, udpECT, tcp, tcpECN)
	}
}

func TestVantagesAndFilter(t *testing.T) {
	d := sampleDataset()
	vs := d.Vantages()
	if len(vs) != 2 || vs[0] != "Perkins home" {
		t.Errorf("vantages = %v", vs)
	}
	if len(d.TracesFrom("EC2 Tokyo")) != 1 {
		t.Error("filter broken")
	}
	if len(d.TracesFrom("nowhere")) != 0 {
		t.Error("phantom traces from unknown vantage")
	}
}

func TestServersUnion(t *testing.T) {
	d := sampleDataset()
	servers := d.Servers()
	if len(servers) != 2 {
		t.Errorf("servers = %v", servers)
	}
}
