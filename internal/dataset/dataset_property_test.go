package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

// Generate lets testing/quick build random observations.
func (Observation) Generate(r *rand.Rand, size int) reflect.Value {
	o := Observation{
		Server:          packet.AddrFromUint32(r.Uint32()),
		UDPReachable:    r.Intn(2) == 0,
		UDPECTReachable: r.Intn(2) == 0,
		UDPAttempts:     r.Intn(7),
		UDPECTAttempts:  r.Intn(7),
		TCPReachable:    r.Intn(2) == 0,
		TCPECNReachable: r.Intn(2) == 0,
		TCPECN:          r.Intn(2) == 0,
		HTTPStatus:      []int{0, 200, 302, 404}[r.Intn(4)],
	}
	return reflect.ValueOf(o)
}

// Property: datasets survive the JSONL round trip exactly.
func TestDatasetRoundTripProperty(t *testing.T) {
	f := func(vantage string, batch uint8, obs []Observation) bool {
		d := &Dataset{Traces: []Trace{{
			Vantage:      vantage,
			Batch:        int(batch%2) + 1,
			Observations: obs,
		}}}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Traces) != 1 {
			return false
		}
		tr := got.Traces[0]
		if tr.Vantage != vantage || len(tr.Observations) != len(obs) {
			return false
		}
		for i := range obs {
			if tr.Observations[i] != obs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CountReachable never exceeds the observation count and each
// counter is consistent with a manual tally.
func TestCountReachableProperty(t *testing.T) {
	f := func(obs []Observation) bool {
		tr := Trace{Observations: obs}
		udp, udpECT, tcp, tcpECN := tr.CountReachable()
		n := len(obs)
		if udp > n || udpECT > n || tcp > n || tcpECN > n {
			return false
		}
		wantUDP := 0
		for _, o := range obs {
			if o.UDPReachable {
				wantUDP++
			}
		}
		return udp == wantUDP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
