// Package dataset defines the measurement study's data model and its
// persistence format: the schema of one server observation, one trace
// (all 2500 servers × four measurements from one vantage point), and the
// campaign dataset the analysis package consumes.
//
// The original study published its traces at
// doi:10.5525/gla.researchdata.207; this package is the analogue, using
// JSON-lines so datasets stream and diff cleanly.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
)

// Observation is the outcome of the four measurements against one server
// within one trace (Section 3 of the paper).
type Observation struct {
	Server packet.Addr `json:"server"`

	// UDP (NTP) reachability with not-ECT and ECT(0) marked requests.
	UDPReachable    bool `json:"udp"`
	UDPECTReachable bool `json:"udp_ect"`
	// Attempts used (≤ 6: one initial + up to five retransmissions).
	UDPAttempts    int `json:"udp_attempts,omitempty"`
	UDPECTAttempts int `json:"udp_ect_attempts,omitempty"`

	// TCP (HTTP) reachability without ECN, and ECN negotiation outcome
	// when requested with an ECN-setup SYN.
	TCPReachable    bool `json:"tcp"`
	TCPECNReachable bool `json:"tcp_ecn"`        // reachable when ECN requested
	TCPECN          bool `json:"tcp_ecn_nego"`   // ECN-setup SYN-ACK received
	HTTPStatus      int  `json:"http,omitempty"` // status code without ECN
}

// Trace is one pass over the full server list from one vantage point.
type Trace struct {
	// Vantage is the location name (paper Table 2 vocabulary).
	Vantage string `json:"vantage"`
	// Batch is 1 (April/May) or 2 (July/August).
	Batch int `json:"batch"`
	// Index is the trace's sequence number within the campaign.
	Index int `json:"index"`
	// Started is the virtual start time.
	Started time.Duration `json:"started"`
	// Observations, one per server probed.
	Observations []Observation `json:"observations"`
}

// CountReachable tallies the four reachability dimensions of a trace.
func (t *Trace) CountReachable() (udp, udpECT, tcp, tcpECN int) {
	for _, o := range t.Observations {
		if o.UDPReachable {
			udp++
		}
		if o.UDPECTReachable {
			udpECT++
		}
		if o.TCPReachable {
			tcp++
		}
		if o.TCPECN {
			tcpECN++
		}
	}
	return
}

// Dataset is a campaign's full output.
type Dataset struct {
	Traces []Trace
}

// Vantages returns the distinct vantage names in first-seen order.
func (d *Dataset) Vantages() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range d.Traces {
		if !seen[t.Vantage] {
			seen[t.Vantage] = true
			out = append(out, t.Vantage)
		}
	}
	return out
}

// TracesFrom filters traces by vantage.
func (d *Dataset) TracesFrom(vantage string) []Trace {
	var out []Trace
	for _, t := range d.Traces {
		if t.Vantage == vantage {
			out = append(out, t)
		}
	}
	return out
}

// Servers returns the union of server addresses observed, in stable
// (address) order of first appearance within the first trace.
func (d *Dataset) Servers() []packet.Addr {
	if len(d.Traces) == 0 {
		return nil
	}
	seen := map[packet.Addr]bool{}
	var out []packet.Addr
	for _, t := range d.Traces {
		for _, o := range t.Observations {
			if !seen[o.Server] {
				seen[o.Server] = true
				out = append(out, o.Server)
			}
		}
	}
	return out
}

// Merge concatenates datasets in argument order and renumbers the trace
// Index field to a single ascending campaign-wide sequence. Callers that
// split a campaign into independently-executed shards pass the per-shard
// datasets in canonical (vantage, slice) order; because each part is
// internally ordered, slices are contiguous trace blocks, and the
// concatenation order is fixed, the merged output is byte-identical
// however the shards were scheduled — and however many slices each
// vantage was split into.
//
// Trace.Started is each trace's virtual start time. The sharded engine
// pins it to the trace's own epoch (a function of the trace's
// per-vantage index alone), so it merges monotonic per vantage and
// identical across slicings; order merged traces by Index, which is
// campaign-wide.
func Merge(parts ...*Dataset) *Dataset {
	total := 0
	for _, p := range parts {
		if p != nil {
			total += len(p.Traces)
		}
	}
	merged := &Dataset{Traces: make([]Trace, 0, total)}
	for _, p := range parts {
		if p == nil {
			continue
		}
		merged.Traces = append(merged.Traces, p.Traces...)
	}
	for i := range merged.Traces {
		merged.Traces[i].Index = i
	}
	return merged
}

// Write streams the dataset as JSON lines, one trace per line.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Traces {
		if err := enc.Encode(&d.Traces[i]); err != nil {
			return fmt.Errorf("dataset: encode trace %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines dataset.
func Read(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var t Trace
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				return d, nil
			}
			return nil, fmt.Errorf("dataset: decode trace %d: %w", len(d.Traces), err)
		}
		d.Traces = append(d.Traces, t)
	}
}
