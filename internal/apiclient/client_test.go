package apiclient_test

// Error-classification unit tests: the transient/terminal split that
// drives worker retries, and the Retry-After extraction that paces
// them.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/apiclient"
)

func TestIsTransient(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&apiclient.APIError{Status: 500, Code: "internal"}, true},
		{&apiclient.APIError{Status: 503, Code: "unavailable"}, true},
		{&apiclient.APIError{Status: 429, Code: "overloaded"}, true},
		{&apiclient.APIError{Status: 429, Code: "worker_quarantined"}, true},
		{&apiclient.APIError{Status: 409, Code: "lease_expired"}, false},
		{&apiclient.APIError{Status: 400, Code: "spec_invalid"}, false},
		{&apiclient.APIError{Status: 404, Code: "job_not_found"}, false},
		{fmt.Errorf("dial tcp: connection refused"), true}, // network error, no APIError
		{nil, false},
	} {
		if got := apiclient.IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestRetryAfter(t *testing.T) {
	wrapped := fmt.Errorf("claim: %w", &apiclient.APIError{Status: 429, Code: "overloaded", RetryAfter: 7})
	if got := apiclient.RetryAfter(wrapped); got != 7*time.Second {
		t.Errorf("RetryAfter(wrapped 429) = %v, want 7s", got)
	}
	if got := apiclient.RetryAfter(&apiclient.APIError{Status: 503}); got != 0 {
		t.Errorf("RetryAfter(no hint) = %v, want 0", got)
	}
	if got := apiclient.RetryAfter(errors.New("plain")); got != 0 {
		t.Errorf("RetryAfter(plain error) = %v, want 0", got)
	}
}
