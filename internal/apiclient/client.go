// Package apiclient is the typed Go client for the control plane's v1
// API — the one place request paths, bodies and response shapes are
// spelled out. The worker mode, the httptest suites and the CLI all
// speak to the server through it, so a wire-contract change is a
// one-package edit.
//
// The client deliberately defines its own response structs rather than
// importing internal/server: it models the wire contract, not the
// server's internals, which is what lets the httptest suites assert
// the contract from the outside.
package apiclient

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
)

// Client talks to one coordinator. The zero HTTP client is replaced by
// http.DefaultClient; all methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	// timeout bounds each individual request (WithTimeout); zero means
	// only the caller's context applies.
	timeout time.Duration
	// plainUploads disables gzip on shard-result uploads
	// (WithUploadCompression(false)); uploads compress by default.
	plainUploads bool
}

// New returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
}

// NewWithHTTPClient uses a caller-supplied http.Client (timeouts,
// transports, test instrumentation).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithTimeout returns a copy of the client whose every request carries
// its own deadline on top of the caller's context — the guard that
// turns a hung coordinator into a retryable error instead of a stuck
// worker. Zero removes the per-request bound.
func (c *Client) WithTimeout(d time.Duration) *Client {
	cp := *c
	cp.timeout = d
	return &cp
}

// WithUploadCompression returns a copy of the client with gzip
// shard-result uploads switched on (the default) or off. Off exists
// for old coordinators and for measuring what compression buys.
func (c *Client) WithUploadCompression(on bool) *Client {
	cp := *c
	cp.plainUploads = !on
	return &cp
}

// APIError is any non-2xx response, decoded from the unified error
// envelope. Code is the stable machine-readable contract; branch on it,
// not on Message.
type APIError struct {
	Status  int
	Code    string
	Message string
	Fields  []campaign.FieldError
	// RetryAfter is the server's back-off hint in seconds (the
	// Retry-After header on drain/overload rejections); zero when the
	// server sent none.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsTransient classifies an error for retry: true means a later,
// identical request may succeed and the server's idempotency (dedup,
// first-writer-wins uploads) makes the re-send safe. API errors are
// transient iff server-side (5xx — unavailable, queue_full, internal)
// or an explicit back-off signal (429 — worker_quarantined,
// overloaded: the server WANTS a later retry, just not a prompt one);
// every other 4xx is a fact about the request that retrying cannot
// change (spec_invalid, stale_result, lease_expired, ...). Anything
// that never became an HTTP response — severed connections, timeouts,
// DNS — is the ambiguous case and is transient by design. A canceled
// caller context is terminal: the caller gave up.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	var ae *APIError
	if asAPIError(err, &ae) {
		return ae.Status >= 500 || ae.Status == http.StatusTooManyRequests
	}
	return true
}

// RetryAfter extracts the server's Retry-After hint from an error,
// zero when there is none — callers stretch their backoff to honor it.
func RetryAfter(err error) time.Duration {
	var ae *APIError
	if asAPIError(err, &ae) && ae.RetryAfter > 0 {
		return time.Duration(ae.RetryAfter) * time.Second
	}
	return 0
}

// IsCode reports whether err is an APIError carrying the given stable
// code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return asAPIError(err, &ae) && ae.Code == code
}

func asAPIError(err error, target **APIError) bool {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Job is one job snapshot (GET /v1/jobs/{id}).
type Job struct {
	ID        string        `json:"id"`
	Key       string        `json:"key"`
	State     string        `json:"state"`
	Cached    bool          `json:"cached"`
	Error     string        `json:"error,omitempty"`
	Spec      campaign.Spec `json:"spec"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`

	ShardsTotal int `json:"shards_total"`
	ShardsDone  int `json:"shards_done"`
	TracesTotal int `json:"traces_total"`
	TracesDone  int `json:"traces_done"`
}

// Terminal job states, mirroring the server's lifecycle vocabulary.
const (
	JobDone   = "done"
	JobFailed = "failed"
)

// Shard is one (vantage, slice) unit's completion state.
type Shard struct {
	campaign.ShardInfo
	State          string  `json:"state"`
	Worker         string  `json:"worker,omitempty"`
	Events         uint64  `json:"events,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// JobsPage is one page of the job listing.
type JobsPage struct {
	Jobs       []Job  `json:"jobs"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// RunsPage is one page of cached run keys.
type RunsPage struct {
	Runs       []string `json:"runs"`
	NextCursor string   `json:"next_cursor,omitempty"`
}

// Stats are the job manager's lifetime counters.
type Stats struct {
	Submitted   int `json:"submitted"`
	CacheHits   int `json:"cache_hits"`
	Joined      int `json:"joined"`
	RunsStarted int `json:"runs_started"`
	RunsFailed  int `json:"runs_failed"`
	Jobs        int `json:"jobs"`
	Recovered   int `json:"recovered"`
}

// Report is a run's stored metadata (GET .../report). Congestion, when
// present, is the CE-mark report left raw for callers that render it.
type Report struct {
	Key                string          `json:"key"`
	Spec               campaign.Spec   `json:"spec"`
	DatasetSHA256      string          `json:"dataset_sha256"`
	DatasetBytes       int64           `json:"dataset_bytes"`
	Traces             int             `json:"traces"`
	Servers            int             `json:"servers"`
	Shards             int             `json:"shards"`
	Events             uint64          `json:"events"`
	PhantomEvents      uint64          `json:"phantom_events"`
	ReplayedBoundaries uint64          `json:"replayed_boundaries"`
	WallSeconds        float64         `json:"wall_seconds"`
	CompletedAt        time.Time       `json:"completed_at"`
	Congestion         json.RawMessage `json:"congestion,omitempty"`
}

// ClaimedShard is one leased shard in a claim.
type ClaimedShard struct {
	Index int `json:"index"`
	campaign.ShardInfo
	Lease     string    `json:"lease"`
	ExpiresAt time.Time `json:"expires_at"`
	// Speculative marks a straggler re-issue: another worker still holds
	// a live lease on this shard and the first upload wins.
	Speculative bool `json:"speculative,omitempty"`
}

// Worker is one worker's health-scoreboard entry (GET /v1/workers).
type Worker struct {
	ID      string `json:"id"`
	State   string `json:"state"` // healthy | quarantined | probation
	Strikes int    `json:"strikes"`

	LeaseExpiries     int `json:"lease_expiries"`
	StaleUploads      int `json:"stale_uploads"`
	SpeculationLosses int `json:"speculation_losses"`

	Claims   int `json:"claims"`
	Accepted int `json:"accepted"`

	LastSeen         time.Time  `json:"last_seen"`
	QuarantinedUntil *time.Time `json:"quarantined_until,omitempty"`
}

// Claim is a claim response: the job's canonical spec and cache key
// plus the leased batch (empty when nothing is pending).
type Claim struct {
	Job             string         `json:"job"`
	State           string         `json:"state"`
	SpecHash        string         `json:"spec_hash"`
	Spec            campaign.Spec  `json:"spec"`
	LeaseTTLSeconds float64        `json:"lease_ttl_seconds"`
	ShardsTotal     int            `json:"shards_total"`
	ShardsDone      int            `json:"shards_done"`
	Shards          []ClaimedShard `json:"shards"`
}

// Heartbeat acknowledges a lease extension.
type Heartbeat struct {
	Job       string    `json:"job"`
	Index     int       `json:"index"`
	ExpiresAt time.Time `json:"expires_at"`
}

// ResultAck acknowledges a shard upload ("accepted" or "duplicate").
type ResultAck struct {
	Job         string `json:"job"`
	Index       int    `json:"index"`
	Status      string `json:"status"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total"`
	State       string `json:"state"`
}

// do issues one request: in (when non-nil) is marshaled as the JSON
// body, a non-2xx response becomes an *APIError decoded from the
// envelope, and out (when non-nil) receives the decoded 2xx body.
// Returns the HTTP status for callers that branch on 200-vs-202.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(raw)
	}
	return c.send(ctx, method, path, body, "", out)
}

// doGzip is do with a gzip-compressed request body — the shard-result
// upload path, where the payload is large repetitive JSON.
func (c *Client) doGzip(ctx context.Context, method, path string, in, out any) (int, error) {
	raw, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return 0, err
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	return c.send(ctx, method, path, &buf, "gzip", out)
}

// send issues one request with an optional per-request deadline and
// optional Content-Encoding, decoding errors and output like do.
func (c *Client) send(ctx context.Context, method, path string, body io.Reader, encoding string, out any) (int, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, decodeAPIError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("api: decode %s %s: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

func decodeAPIError(resp *http.Response, raw []byte) error {
	retryAfter := 0
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		retryAfter, _ = strconv.Atoi(ra)
	}
	var envelope struct {
		Error struct {
			Code    string                `json:"code"`
			Message string                `json:"message"`
			Fields  []campaign.FieldError `json:"fields"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Error.Code == "" {
		return &APIError{Status: resp.StatusCode, Code: "internal",
			Message:    fmt.Sprintf("unparseable error body: %.200s", raw),
			RetryAfter: retryAfter}
	}
	return &APIError{
		Status:     resp.StatusCode,
		Code:       envelope.Error.Code,
		Message:    envelope.Error.Message,
		Fields:     envelope.Error.Fields,
		RetryAfter: retryAfter,
	}
}

// raw issues a GET and returns the undecoded body (datasets, metrics).
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, decodeAPIError(resp, body)
	}
	return body, nil
}

// Submit posts a spec. created reports whether this submission queued
// fresh work (202) rather than joining an in-flight or cached run
// (200).
func (c *Client) Submit(ctx context.Context, spec campaign.Spec) (job Job, created bool, err error) {
	status, err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &job)
	return job, status == http.StatusAccepted, err
}

// SubmitRaw posts a pre-encoded spec body unchanged (the CLI's -spec
// passthrough).
func (c *Client) SubmitRaw(ctx context.Context, body []byte) (job Job, created bool, err error) {
	status, err := c.do(ctx, http.MethodPost, "/v1/campaigns", json.RawMessage(body), &job)
	return job, status == http.StatusAccepted, err
}

// Job fetches one job snapshot.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var job Job
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job)
	return job, err
}

// AwaitJob polls until the job reaches a terminal state. A failed job
// is returned with a non-nil error carrying its message.
func (c *Client) AwaitJob(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return job, err
		}
		switch job.State {
		case JobDone:
			return job, nil
		case JobFailed:
			return job, fmt.Errorf("api: job %s failed: %s", id, job.Error)
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// JobsOptions filter and paginate the job listing.
type JobsOptions struct {
	Limit  int
	Cursor string
	State  string
}

// Jobs fetches one page of the job listing.
func (c *Client) Jobs(ctx context.Context, opts JobsOptions) (JobsPage, error) {
	q := url.Values{}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	if opts.State != "" {
		q.Set("state", opts.State)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page JobsPage
	_, err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Shards fetches a job's per-(vantage, slice) completion snapshot.
func (c *Client) Shards(ctx context.Context, id string) ([]Shard, error) {
	var resp struct {
		Shards []Shard `json:"shards"`
	}
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/shards", nil, &resp)
	return resp.Shards, err
}

// JobDataset fetches a done job's merged dataset (JSON lines).
func (c *Client) JobDataset(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/v1/jobs/"+url.PathEscape(id)+"/dataset")
}

// JobReport fetches a done job's stored RunMeta.
func (c *Client) JobReport(ctx context.Context, id string) (Report, error) {
	var rep Report
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/report", nil, &rep)
	return rep, err
}

// Runs fetches one page of cached run keys.
func (c *Client) Runs(ctx context.Context, limit int, cursor string) (RunsPage, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	path := "/v1/runs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page RunsPage
	_, err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// RunReport fetches a cached run's RunMeta by key.
func (c *Client) RunReport(ctx context.Context, key string) (Report, error) {
	var rep Report
	_, err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(key), nil, &rep)
	return rep, err
}

// RunDataset fetches a cached run's dataset by key.
func (c *Client) RunDataset(ctx context.Context, key string) ([]byte, error) {
	return c.raw(ctx, "/v1/runs/"+url.PathEscape(key)+"/dataset")
}

// Workers fetches the worker health scoreboard.
func (c *Client) Workers(ctx context.Context) ([]Worker, error) {
	var resp struct {
		Workers []Worker `json:"workers"`
	}
	_, err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &resp)
	return resp.Workers, err
}

// Stats fetches the job manager's lifetime counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	_, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// MetricsText fetches /v1/metrics in the Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	body, err := c.raw(ctx, "/v1/metrics")
	return string(body), err
}

// Claim leases up to max pending shards of a distributed job.
func (c *Client) Claim(ctx context.Context, jobID, worker string, max int) (Claim, error) {
	req := struct {
		Worker    string `json:"worker"`
		MaxShards int    `json:"max_shards"`
	}{Worker: worker, MaxShards: max}
	var claim Claim
	_, err := c.do(ctx, http.MethodPost,
		"/v1/jobs/"+url.PathEscape(jobID)+"/shards/claim", req, &claim)
	return claim, err
}

// Heartbeat extends one lease by a full TTL.
func (c *Client) Heartbeat(ctx context.Context, jobID string, index int, worker, lease string) (Heartbeat, error) {
	req := struct {
		Worker string `json:"worker"`
		Lease  string `json:"lease"`
	}{Worker: worker, Lease: lease}
	var hb Heartbeat
	_, err := c.do(ctx, http.MethodPost,
		fmt.Sprintf("/v1/jobs/%s/shards/%d/heartbeat", url.PathEscape(jobID), index), req, &hb)
	return hb, err
}

// PushShardResult uploads one executed shard under its lease. The
// body is gzip-compressed by default (trace wire payloads are large,
// repetitive JSON); WithUploadCompression(false) sends it plain. The
// upload is idempotent — the server's first-writer-wins dedup makes
// re-sending after an ambiguous failure safe.
func (c *Client) PushShardResult(ctx context.Context, jobID string, index int, worker, lease string, res *campaign.ShardResultWire) (ResultAck, error) {
	req := struct {
		Worker string                    `json:"worker"`
		Lease  string                    `json:"lease"`
		Result *campaign.ShardResultWire `json:"result"`
	}{Worker: worker, Lease: lease, Result: res}
	path := fmt.Sprintf("/v1/jobs/%s/shards/%d/result", url.PathEscape(jobID), index)
	var ack ResultAck
	var err error
	if c.plainUploads {
		_, err = c.do(ctx, http.MethodPost, path, req, &ack)
	} else {
		_, err = c.doGzip(ctx, http.MethodPost, path, req, &ack)
	}
	return ack, err
}
