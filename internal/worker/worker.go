// Package worker implements the distributed shard executor: a loop
// that discovers running distributed jobs on a coordinator, leases
// batches of (vantage, slice) shards over the v1 API, executes them
// with the local campaign engine against a locally compiled blueprint,
// and streams results back under heartbeat-extended leases.
//
// A worker holds no durable state. Everything it needs arrives in the
// claim response — the canonical spec (compile the same frozen
// blueprint any other machine would) and the job's spec hash (stamp
// uploads for the coordinator's poison guard) — so a worker that
// crashes is replaced by any other worker re-claiming its lapsed
// leases, and determinism guarantees the replacement uploads the same
// bytes the original would have.
package worker

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/topology"
)

// Config parameterizes one worker run.
type Config struct {
	// Client speaks to the coordinator.
	Client *apiclient.Client
	// ID names this worker in leases, metrics and journal events.
	ID string
	// Batch bounds shards claimed per request. Zero means 2.
	Batch int
	// Poll is the idle re-scan interval. Zero means 500ms.
	Poll time.Duration
	// Jobs restricts the worker to explicit job IDs; empty discovers
	// running distributed jobs from the listing.
	Jobs []string
	// ExitWhenIdle returns from Run once a scan finds no distributed
	// work anywhere, instead of polling forever.
	ExitWhenIdle bool
	// ExitAfterResults, when positive, abandons the run the moment that
	// many uploads have been accepted — without finishing or releasing
	// the rest of the claimed batch. It exists to exercise the
	// crash/lease-expiry path in tests and the distributed-smoke job.
	ExitAfterResults int
	// Logger receives per-shard progress. Nil discards.
	Logger *slog.Logger
}

// Stats summarizes one worker run.
type Stats struct {
	Claims    int `json:"claims"`
	Executed  int `json:"executed"`
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"`
	// Rejected counts uploads the coordinator refused (stale_result,
	// lease_expired) — work lost to eviction, not an error.
	Rejected int `json:"rejected"`
}

// errExitAfterResults signals the deliberate mid-run abandonment that
// ExitAfterResults requests.
var errExitAfterResults = fmt.Errorf("worker: exit-after-results reached")

// compiledJob caches the per-spec-hash execution state: one compiled
// blueprint serves every shard of the job.
type compiledJob struct {
	cfg campaign.Config
	bp  *topology.Blueprint
}

// Run executes the worker loop until ctx is canceled, the coordinator
// has no more distributed work (with ExitWhenIdle), or
// ExitAfterResults fires. The returned stats count this run only.
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.Client == nil {
		return Stats{}, fmt.Errorf("worker: no coordinator client")
	}
	if cfg.ID == "" {
		return Stats{}, fmt.Errorf("worker: ID is required")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 2
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}

	var stats Stats
	compiled := make(map[string]*compiledJob)
	for {
		jobs, err := discoverJobs(ctx, cfg)
		if err != nil {
			return stats, err
		}
		worked := false
		for _, jobID := range jobs {
			n, err := workJob(ctx, cfg, logger, jobID, compiled, &stats)
			if err == errExitAfterResults {
				return stats, nil
			}
			if err != nil {
				return stats, err
			}
			worked = worked || n > 0
		}
		if !worked {
			if cfg.ExitWhenIdle {
				return stats, nil
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(cfg.Poll):
			}
			continue
		}
		// Claimed and executed something: immediately scan again; more
		// shards are likely pending.
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		default:
		}
	}
}

// discoverJobs resolves the job IDs to work on: the explicit list, or
// every running distributed job in the (paginated) listing.
func discoverJobs(ctx context.Context, cfg Config) ([]string, error) {
	if len(cfg.Jobs) > 0 {
		return cfg.Jobs, nil
	}
	var ids []string
	cursor := ""
	for {
		page, err := cfg.Client.Jobs(ctx, apiclient.JobsOptions{
			Limit: 200, Cursor: cursor, State: "running",
		})
		if err != nil {
			return nil, err
		}
		for _, j := range page.Jobs {
			if j.Spec.Execution == campaign.ExecutionDistributed {
				ids = append(ids, j.ID)
			}
		}
		if page.NextCursor == "" {
			return ids, nil
		}
		cursor = page.NextCursor
	}
}

// workJob claims and executes one batch for one job, returning the
// number of shards leased to us.
func workJob(ctx context.Context, cfg Config, logger *slog.Logger, jobID string, compiled map[string]*compiledJob, stats *Stats) (int, error) {
	claim, err := cfg.Client.Claim(ctx, jobID, cfg.ID, cfg.Batch)
	if err != nil {
		// The job may have finished, or be a local-execution job named
		// explicitly; neither ends the worker.
		if apiclient.IsCode(err, "job_not_found") || apiclient.IsCode(err, "job_not_distributed") {
			return 0, nil
		}
		return 0, err
	}
	stats.Claims++
	if len(claim.Shards) == 0 {
		return 0, nil
	}
	cj, err := compileFor(claim, compiled)
	if err != nil {
		return 0, err
	}
	ttl := time.Duration(claim.LeaseTTLSeconds * float64(time.Second))
	for _, sh := range claim.Shards {
		if err := executeAndUpload(ctx, cfg, logger, claim, cj, sh, ttl, stats); err != nil {
			return len(claim.Shards), err
		}
	}
	return len(claim.Shards), nil
}

// compileFor returns the job's cached execution state, deriving the
// engine config from the claim's canonical spec and compiling the
// frozen blueprint on first use.
func compileFor(claim apiclient.Claim, compiled map[string]*compiledJob) (*compiledJob, error) {
	if cj, ok := compiled[claim.SpecHash]; ok {
		return cj, nil
	}
	engineCfg, err := claim.Spec.Config()
	if err != nil {
		return nil, fmt.Errorf("worker: job %s spec: %w", claim.Job, err)
	}
	bp, err := engineCfg.CompileBlueprint()
	if err != nil {
		return nil, fmt.Errorf("worker: job %s blueprint: %w", claim.Job, err)
	}
	cj := &compiledJob{cfg: engineCfg, bp: bp}
	compiled[claim.SpecHash] = cj
	return cj, nil
}

// executeAndUpload runs one leased shard and uploads its result, with
// a heartbeat goroutine extending the lease at a third of its TTL
// while the shard executes.
func executeAndUpload(ctx context.Context, cfg Config, logger *slog.Logger, claim apiclient.Claim, cj *compiledJob, sh apiclient.ClaimedShard, ttl time.Duration, stats *Stats) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if interval := ttl / 3; interval > 0 {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					if _, err := cfg.Client.Heartbeat(hbCtx, claim.Job, sh.Index, cfg.ID, sh.Lease); err != nil {
						// Lease lost (or job done): stop beating. The
						// upload path reports the definitive outcome.
						return
					}
				}
			}
		}()
	}

	wire, err := campaign.ExecuteShard(cj.cfg, cj.bp, sh.Shard, sh.Slice)
	if err != nil {
		return fmt.Errorf("worker: execute shard (%d,%d) of %s: %w", sh.Shard, sh.Slice, claim.Job, err)
	}
	stats.Executed++
	wire.SpecHash = claim.SpecHash
	stopHB()

	ack, err := cfg.Client.PushShardResult(ctx, claim.Job, sh.Index, cfg.ID, sh.Lease, wire)
	if err != nil {
		if apiclient.IsCode(err, "stale_result") || apiclient.IsCode(err, "lease_expired") {
			stats.Rejected++
			logger.Info("shard result rejected", "job", claim.Job, "shard", sh.Index, "err", err)
			return nil
		}
		return err
	}
	switch ack.Status {
	case "duplicate":
		stats.Duplicate++
	default:
		stats.Accepted++
	}
	logger.Info("shard uploaded", "job", claim.Job, "shard", sh.Index,
		"status", ack.Status, "done", fmt.Sprintf("%d/%d", ack.ShardsDone, ack.ShardsTotal))
	if cfg.ExitAfterResults > 0 && stats.Accepted >= cfg.ExitAfterResults {
		return errExitAfterResults
	}
	return nil
}
