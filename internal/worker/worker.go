// Package worker implements the distributed shard executor: a loop
// that discovers running distributed jobs on a coordinator, leases
// batches of (vantage, slice) shards over the v1 API, executes them
// with the local campaign engine against a locally compiled blueprint,
// and streams results back under heartbeat-extended leases.
//
// A worker holds no durable state. Everything it needs arrives in the
// claim response — the canonical spec (compile the same frozen
// blueprint any other machine would) and the job's spec hash (stamp
// uploads for the coordinator's poison guard) — so a worker that
// crashes is replaced by any other worker re-claiming its lapsed
// leases, and determinism guarantees the replacement uploads the same
// bytes the original would have.
package worker

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/topology"
)

// Config parameterizes one worker run.
type Config struct {
	// Client speaks to the coordinator.
	Client *apiclient.Client
	// ID names this worker in leases, metrics and journal events.
	ID string
	// Batch bounds shards claimed per request. Zero means 2.
	Batch int
	// Poll is the idle re-scan interval. Zero means 500ms.
	Poll time.Duration
	// Jobs restricts the worker to explicit job IDs; empty discovers
	// running distributed jobs from the listing.
	Jobs []string
	// ExitWhenIdle returns from Run once a scan finds no distributed
	// work anywhere, instead of polling forever.
	ExitWhenIdle bool
	// ExitAfterResults, when positive, abandons the run the moment that
	// many uploads have been accepted — without finishing or releasing
	// the rest of the claimed batch. It exists to exercise the
	// crash/lease-expiry path in tests and the distributed-smoke job.
	ExitAfterResults int
	// WedgeAfterClaim turns the worker into a deliberate straggler: it
	// claims batches and heartbeats its leases forever without ever
	// executing or uploading — the pathology straggler speculation and
	// the quarantine scoreboard exist to beat. Chaos-smoke only.
	WedgeAfterClaim bool
	// Logger receives per-shard progress. Nil discards.
	Logger *slog.Logger

	// Resilience knobs (retry.go). MaxRetries bounds transparent
	// retries of each transient failure (zero means 8); RetryBase and
	// RetryCap shape the capped exponential backoff (zero means
	// 100ms/5s); RequestTimeout bounds each coordinator request so a
	// hung connection becomes a retryable error (zero means no
	// per-request bound beyond the caller's context).
	MaxRetries     int
	RetryBase      time.Duration
	RetryCap       time.Duration
	RequestTimeout time.Duration
}

// Stats summarizes one worker run.
type Stats struct {
	Claims    int `json:"claims"`
	Executed  int `json:"executed"`
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"`
	// Rejected counts uploads the coordinator refused (stale_result,
	// lease_expired) — work lost to eviction, not an error.
	Rejected int `json:"rejected"`
	// Retries counts transient failures absorbed by backoff-and-retry;
	// the crash-smoke CI job asserts workers rode through the
	// coordinator restart by this being non-zero.
	Retries int `json:"retries"`
	// Abandoned counts shards executed but never uploaded because the
	// lease died under them (heartbeat loss) — uploading on a dead
	// lease would only be rejected as stale.
	Abandoned int `json:"abandoned"`
	// Quarantined counts claims the coordinator refused with 429
	// worker_quarantined — this worker is benched and backing off.
	Quarantined int `json:"quarantined"`
}

// errExitAfterResults signals the deliberate mid-run abandonment that
// ExitAfterResults requests.
var errExitAfterResults = fmt.Errorf("worker: exit-after-results reached")

// compiledJob caches the per-spec-hash execution state: one compiled
// blueprint serves every shard of the job.
type compiledJob struct {
	cfg campaign.Config
	bp  *topology.Blueprint
}

// Run executes the worker loop until ctx is canceled, the coordinator
// has no more distributed work (with ExitWhenIdle), or
// ExitAfterResults fires. The returned stats count this run only.
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.Client == nil {
		return Stats{}, fmt.Errorf("worker: no coordinator client")
	}
	if cfg.ID == "" {
		return Stats{}, fmt.Errorf("worker: ID is required")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 2
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.RequestTimeout > 0 {
		cfg.Client = cfg.Client.WithTimeout(cfg.RequestTimeout)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}

	var stats Stats
	compiled := make(map[string]*compiledJob)
	for {
		var jobs []string
		err := retry(ctx, cfg, logger, &stats, "discover", func() error {
			var derr error
			jobs, derr = discoverJobs(ctx, cfg)
			return derr
		})
		if err != nil {
			return stats, err
		}
		worked := false
		for _, jobID := range jobs {
			n, err := workJob(ctx, cfg, logger, jobID, compiled, &stats)
			if err == errExitAfterResults {
				return stats, nil
			}
			if err != nil {
				return stats, err
			}
			worked = worked || n > 0
		}
		if !worked {
			if cfg.ExitWhenIdle {
				return stats, nil
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(cfg.Poll):
			}
			continue
		}
		// Claimed and executed something: immediately scan again; more
		// shards are likely pending.
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		default:
		}
	}
}

// discoverJobs resolves the job IDs to work on: the explicit list, or
// every running distributed job in the (paginated) listing.
func discoverJobs(ctx context.Context, cfg Config) ([]string, error) {
	if len(cfg.Jobs) > 0 {
		return cfg.Jobs, nil
	}
	var ids []string
	cursor := ""
	for {
		page, err := cfg.Client.Jobs(ctx, apiclient.JobsOptions{
			Limit: 200, Cursor: cursor, State: "running",
		})
		if err != nil {
			return nil, err
		}
		for _, j := range page.Jobs {
			if j.Spec.Execution == campaign.ExecutionDistributed {
				ids = append(ids, j.ID)
			}
		}
		if page.NextCursor == "" {
			return ids, nil
		}
		cursor = page.NextCursor
	}
}

// workJob claims and executes one batch for one job, returning the
// number of shards leased to us.
func workJob(ctx context.Context, cfg Config, logger *slog.Logger, jobID string, compiled map[string]*compiledJob, stats *Stats) (int, error) {
	var claim apiclient.Claim
	err := retry(ctx, cfg, logger, stats, "claim", func() error {
		var cerr error
		claim, cerr = cfg.Client.Claim(ctx, jobID, cfg.ID, cfg.Batch)
		return cerr
	})
	if err != nil {
		// The job may have finished, or be a local-execution job named
		// explicitly; neither ends the worker.
		if apiclient.IsCode(err, "job_not_found") || apiclient.IsCode(err, "job_not_distributed") {
			return 0, nil
		}
		if apiclient.IsCode(err, "worker_quarantined") {
			// Benched by the health scoreboard: honor the Retry-After (the
			// quarantine window), then resume claiming — probation re-admits
			// a worker that behaves.
			stats.Quarantined++
			wait := apiclient.RetryAfter(err)
			if wait <= 0 {
				wait = cfg.Poll
			}
			logger.Warn("quarantined by coordinator; backing off", "job", jobID, "wait", wait)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(wait):
			}
			return 0, nil
		}
		return 0, err
	}
	stats.Claims++
	if len(claim.Shards) == 0 {
		return 0, nil
	}
	if cfg.WedgeAfterClaim {
		return len(claim.Shards), wedgeHold(ctx, cfg, logger, claim, stats)
	}
	cj, err := compileFor(claim, compiled)
	if err != nil {
		return 0, err
	}
	ttl := time.Duration(claim.LeaseTTLSeconds * float64(time.Second))
	for _, sh := range claim.Shards {
		if err := executeAndUpload(ctx, cfg, logger, claim, cj, sh, ttl, stats); err != nil {
			return len(claim.Shards), err
		}
	}
	return len(claim.Shards), nil
}

// wedgeHold is WedgeAfterClaim's body: sit on the claimed batch,
// heartbeating every lease so none ever lapses, and never upload. The
// coordinator sees a live worker making zero progress — exactly the
// straggler that speculation must race and the scoreboard must
// eventually quarantine (each speculation loss is a strike). Returns
// once every held lease has been rejected (shards completed by the
// speculating winners) or the context ends.
func wedgeHold(ctx context.Context, cfg Config, logger *slog.Logger, claim apiclient.Claim, stats *Stats) error {
	ttl := time.Duration(claim.LeaseTTLSeconds * float64(time.Second))
	interval := heartbeatInterval(ttl, cfg.ID)
	if interval <= 0 {
		interval = cfg.Poll
	}
	logger.Warn("wedged: holding leases without executing",
		"job", claim.Job, "shards", len(claim.Shards))
	live := make(map[int]string, len(claim.Shards))
	for _, sh := range claim.Shards {
		live[sh.Index] = sh.Lease
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for len(live) > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		for idx, lease := range live {
			_, err := cfg.Client.Heartbeat(ctx, claim.Job, idx, cfg.ID, lease)
			if err != nil && !apiclient.IsTransient(err) {
				// Evicted or completed by someone else; the wedge lost this one.
				delete(live, idx)
				stats.Abandoned++
			}
		}
	}
	return nil
}

// heartbeatInterval spaces lease heartbeats: a third of the TTL scaled
// by a deterministic per-worker phase in [0.70, 1.0), so a fleet
// started in the same second does not heartbeat in lockstep. Three
// beats still fit in one TTL with margin to ride out one failure.
func heartbeatInterval(ttl time.Duration, workerID string) time.Duration {
	base := ttl / 3
	if base <= 0 {
		return 0
	}
	return time.Duration(float64(base) * (0.70 + 0.30*jitterFrac(workerID)))
}

// compileFor returns the job's cached execution state, deriving the
// engine config from the claim's canonical spec and compiling the
// frozen blueprint on first use.
func compileFor(claim apiclient.Claim, compiled map[string]*compiledJob) (*compiledJob, error) {
	if cj, ok := compiled[claim.SpecHash]; ok {
		return cj, nil
	}
	engineCfg, err := claim.Spec.Config()
	if err != nil {
		return nil, fmt.Errorf("worker: job %s spec: %w", claim.Job, err)
	}
	bp, err := engineCfg.CompileBlueprint()
	if err != nil {
		return nil, fmt.Errorf("worker: job %s blueprint: %w", claim.Job, err)
	}
	cj := &compiledJob{cfg: engineCfg, bp: bp}
	compiled[claim.SpecHash] = cj
	return cj, nil
}

// executeAndUpload runs one leased shard and uploads its result, with
// a heartbeat goroutine extending the lease at a third of its TTL
// while the shard executes. The goroutine also watches for lease
// death: a terminal heartbeat rejection (evicted, superseded, job
// gone), or a coordinator unreachable for a full TTL — after which the
// lease has certainly lapsed server-side. Either way the shard is
// abandoned rather than uploaded: a dead lease's upload would only be
// rejected as stale, and the shard's next holder re-executes it to the
// same bytes anyway.
func executeAndUpload(ctx context.Context, cfg Config, logger *slog.Logger, claim apiclient.Claim, cj *compiledJob, sh apiclient.ClaimedShard, ttl time.Duration, stats *Stats) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var leaseDead atomic.Bool
	if interval := heartbeatInterval(ttl, cfg.ID); interval > 0 {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			lastOK := time.Now()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					_, err := cfg.Client.Heartbeat(hbCtx, claim.Job, sh.Index, cfg.ID, sh.Lease)
					switch {
					case err == nil:
						lastOK = time.Now()
					case hbCtx.Err() != nil:
						return // execution finished; the upload path decides
					case !apiclient.IsTransient(err):
						leaseDead.Store(true)
						return
					case time.Since(lastOK) > ttl:
						leaseDead.Store(true)
						return
					}
				}
			}
		}()
	}

	wire, err := campaign.ExecuteShard(cj.cfg, cj.bp, sh.Shard, sh.Slice)
	if err != nil {
		return fmt.Errorf("worker: execute shard (%d,%d) of %s: %w", sh.Shard, sh.Slice, claim.Job, err)
	}
	stats.Executed++
	wire.SpecHash = claim.SpecHash
	stopHB()

	if leaseDead.Load() {
		stats.Abandoned++
		logger.Info("lease died during execution; abandoning shard",
			"job", claim.Job, "shard", sh.Index)
		return nil
	}

	// The upload retries through transient failures: it is idempotent
	// under the coordinator's first-writer-wins dedup, so the ambiguous
	// applied-but-unacked case resolves to a harmless "duplicate".
	var ack apiclient.ResultAck
	err = retry(ctx, cfg, logger, stats, "upload", func() error {
		var uerr error
		ack, uerr = cfg.Client.PushShardResult(ctx, claim.Job, sh.Index, cfg.ID, sh.Lease, wire)
		return uerr
	})
	if err != nil {
		if apiclient.IsCode(err, "stale_result") || apiclient.IsCode(err, "lease_expired") {
			stats.Rejected++
			logger.Info("shard result rejected", "job", claim.Job, "shard", sh.Index, "err", err)
			return nil
		}
		return err
	}
	switch ack.Status {
	case "duplicate":
		stats.Duplicate++
	default:
		stats.Accepted++
	}
	logger.Info("shard uploaded", "job", claim.Job, "shard", sh.Index,
		"status", ack.Status, "done", fmt.Sprintf("%d/%d", ack.ShardsDone, ack.ShardsTotal))
	if cfg.ExitAfterResults > 0 && stats.Accepted >= cfg.ExitAfterResults {
		return errExitAfterResults
	}
	return nil
}
