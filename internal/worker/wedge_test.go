package worker_test

// In-process wedged-worker e2e: one worker claims a batch and
// heartbeats forever without executing (WedgeAfterClaim), so its
// leases never lapse — only straggler speculation can finish those
// shards, and only speculation-loss strikes can quarantine the worker.
// The job must still complete with the canonical dataset bytes, and
// the scoreboard must bench the straggler.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/worker"
)

func TestWedgedWorkerSpeculationAndQuarantine(t *testing.T) {
	// A long TTL keeps the wedged worker's leases alive for the whole
	// test (its heartbeats extend them anyway); an aggressive
	// speculate-after re-exposes its shards almost immediately once the
	// healthy worker has established the typical duration. Quarantine
	// threshold 2 matches the wedged batch size: both speculation
	// losses land, and the straggler is benched.
	srv, err := server.New(server.Config{
		DataDir:             t.TempDir(),
		Jobs:                1,
		LeaseTTL:            30 * time.Second,
		SpeculateAfter:      1.5,
		QuarantineThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := apiclient.New(ts.URL)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}

	// The wedged worker goes first so it definitely owns a batch before
	// the healthy worker drains the pool.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	wedgeDone := make(chan worker.Stats, 1)
	go func() {
		stats, _ := worker.Run(wctx, worker.Config{
			Client: client, ID: "wedged", Batch: 2, Poll: 50 * time.Millisecond,
			WedgeAfterClaim: true,
		})
		wedgeDone <- stats
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		shards, err := client.Shards(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		leased := 0
		for _, s := range shards {
			if s.Worker == "wedged" && s.State == "leased" {
				leased++
			}
		}
		if leased == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged worker never claimed its batch (%d leased)", leased)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The healthy worker drains the pending pool, then its claims pick
	// up speculative twins of the wedged shards and win the race.
	healthyDone := make(chan worker.Stats, 1)
	go func() {
		stats, _ := worker.Run(wctx, worker.Config{
			Client: client, ID: "healthy", Batch: 4, Poll: 50 * time.Millisecond,
		})
		healthyDone <- stats
	}()

	final, err := client.AwaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("job state = %s, want done via speculation", final.State)
	}

	// Byte identity: the dataset must match the in-process engine no
	// matter which worker's twin won each shard.
	spec, err := campaign.ParseSpec([]byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := dataset.Write(&want, res.Dataset); err != nil {
		t.Fatal(err)
	}
	served, err := client.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("dataset (%d bytes) differs from campaign.Run (%d bytes)", len(served), want.Len())
	}

	// Two speculation losses -> quarantined. The strikes land when the
	// healthy worker's winning uploads settle, so poll briefly.
	deadline = time.Now().Add(15 * time.Second)
	for {
		workers, err := client.Workers(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var wedged *apiclient.Worker
		for i := range workers {
			if workers[i].ID == "wedged" {
				wedged = &workers[i]
			}
		}
		if wedged != nil && wedged.State == "quarantined" {
			if wedged.SpeculationLosses < 2 {
				t.Fatalf("wedged worker = %+v, want >= 2 speculation losses", *wedged)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged worker never quarantined: %+v", workers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	<-wedgeDone
	<-healthyDone
}
