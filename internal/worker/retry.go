package worker

import (
	"context"
	"errors"
	"hash/fnv"
	"log/slog"
	"time"

	"repro/internal/apiclient"
)

// Worker-side resilience: how the shard executor survives a flaky
// network and a restarting coordinator. Errors split into two classes
// (apiclient.IsTransient): transient failures — severed connections,
// timeouts, 5xx, the coordinator's drain/overload rejections — are
// retried with capped exponential backoff; terminal ones (any 4xx:
// spec_invalid, stale_result, lease_expired, ...) are facts about the
// request that retrying cannot change and surface immediately.
//
// Every retried request is safe to re-send: claims grant whatever is
// pending now, discovery is a read, and shard-result uploads are
// idempotent by the coordinator's first-writer-wins dedup — the
// ambiguous failure (request applied, response lost) resolves to a
// "duplicate" ack on the re-send, never a double merge.
//
// Jitter is deterministic per worker ID rather than random: a fleet of
// workers knocked back by the same coordinator restart de-synchronizes
// (each ID hashes to its own backoff scale), while any single worker's
// retry schedule reproduces exactly — in keeping with a repo where
// even the chaos is deterministic.

// Retry policy defaults (Config overrides).
const (
	defaultMaxRetries = 8
	defaultRetryBase  = 100 * time.Millisecond
	defaultRetryCap   = 5 * time.Second
)

// jitterFrac hashes a worker ID to a deterministic fraction in [0, 1)
// — the one per-worker phase source shared by the retry backoff and
// the heartbeat interval, so a fleet started by one script
// de-synchronizes identically run after run.
func jitterFrac(workerID string) float64 {
	h := fnv.New64a()
	h.Write([]byte(workerID))
	return float64(h.Sum64()%1024) / 1024
}

// backoff computes the delay schedule: base·2^attempt, capped, scaled
// by the worker's jitter factor in [0.5, 1.0).
type backoff struct {
	base, cap time.Duration
	jitter    float64
}

func newBackoff(workerID string, base, ceil time.Duration) backoff {
	if base <= 0 {
		base = defaultRetryBase
	}
	if ceil <= 0 {
		ceil = defaultRetryCap
	}
	return backoff{base: base, cap: ceil, jitter: 0.5 + jitterFrac(workerID)/2}
}

func (b backoff) delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	return time.Duration(float64(d) * b.jitter)
}

// retry runs op until it succeeds, fails terminally, or exhausts the
// budget. The server's Retry-After hint, when longer than the computed
// backoff, wins — the coordinator knows its own drain window.
func retry(ctx context.Context, cfg Config, logger *slog.Logger, stats *Stats, what string, op func() error) error {
	bo := newBackoff(cfg.ID, cfg.RetryBase, cfg.RetryCap)
	max := cfg.MaxRetries
	if max <= 0 {
		max = defaultMaxRetries
	}
	for attempt := 0; ; attempt++ {
		err := op()
		if apiclient.IsCode(err, "worker_quarantined") {
			// Not a failure to grind through: the coordinator has benched
			// this worker for its quarantine window. Surface immediately so
			// the caller can back off for the full Retry-After instead of
			// burning the retry budget.
			return err
		}
		if err == nil || !apiclient.IsTransient(err) || attempt >= max {
			return err
		}
		stats.Retries++
		d := bo.delay(attempt)
		var ae *apiclient.APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			if hint := time.Duration(ae.RetryAfter) * time.Second; hint > d {
				d = hint
			}
		}
		logger.Warn("transient failure; backing off",
			"op", what, "attempt", attempt+1, "max", max, "delay", d, "err", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}
