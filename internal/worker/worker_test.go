package worker_test

// End-to-end worker-mode test: a real httptest coordinator with a
// short lease TTL, one worker that crashes mid-run leaving leases to
// lapse, and a second worker that drains the job. The merged dataset
// must be byte-identical to the in-process engine.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/worker"
)

const distSpec = `{"spec": 1, "scale": "small", "traces": 1, "seed": 2015, "stride": 0,
  "execution": "distributed"}`

func TestTwoWorkersWithMidRunCrash(t *testing.T) {
	// The TTL must comfortably exceed a full batch's execution time even
	// under -race and parallel-package load: a claimed shard's sibling
	// leases are not heartbeat-extended until their turn comes, and a
	// mid-batch eviction would turn an asserted "accepted" into a
	// rejection.
	const ttl = 3 * time.Second
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Jobs: 1, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := apiclient.New(ts.URL)
	ctx := context.Background()

	job, created, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !created || job.State != "running" {
		t.Fatalf("submit = created %v state %s", created, job.State)
	}

	// Worker A claims a batch of four but abandons the run after two
	// accepted uploads — a stand-in for a crash, leaving two live
	// leases behind to expire.
	statsA, err := worker.Run(ctx, worker.Config{
		Client: client, ID: "wA", Batch: 4, ExitAfterResults: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Accepted != 2 || statsA.Rejected != 0 {
		t.Fatalf("worker A stats = %+v, want exactly 2 accepted", statsA)
	}

	// Let A's orphaned leases lapse, then drain the job with worker B.
	time.Sleep(ttl + 200*time.Millisecond)
	statsB, err := worker.Run(ctx, worker.Config{
		Client: client, ID: "wB", Batch: 4, ExitWhenIdle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := job.ShardsTotal - statsA.Accepted; statsB.Accepted != want || statsB.Rejected != 0 {
		t.Fatalf("worker B stats = %+v, want %d accepted", statsB, want)
	}

	done, err := client.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" || done.ShardsDone != done.ShardsTotal {
		t.Fatalf("job after both workers = %+v, want done", done)
	}

	// The two-worker, mid-crash dataset must match the in-process engine
	// byte for byte.
	served, err := client.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.ParseSpec([]byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := dataset.Write(&direct, res.Dataset); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		t.Fatalf("dataset after worker crash (%d bytes) differs from campaign.Run (%d bytes)",
			len(served), direct.Len())
	}

	// Telemetry saw the crash: the orphaned leases expired and were
	// re-issued, and both workers left shard-duration samples.
	metrics, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, metrics, `repro_lease_events_total{event="expire"}`); v < 2 {
		t.Fatalf("lease expiries = %v, want >= 2", v)
	}
	if v := metricValue(t, metrics, `repro_lease_events_total{event="reissue"}`); v < 2 {
		t.Fatalf("lease reissues = %v, want >= 2", v)
	}
	for _, w := range []string{"wA", "wB"} {
		if !strings.Contains(metrics, `repro_worker_shard_duration_seconds_count{worker="`+w+`"}`) {
			t.Fatalf("no shard-duration histogram for worker %s in metrics:\n%s", w, metrics)
		}
	}
}

// metricValue extracts one sample value from Prometheus text
// exposition by its full name-plus-labels prefix.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in metrics:\n%s", series, text)
	return 0
}
