package worker_test

// Coordinator-crash e2e: a worker lands part of a campaign, the
// coordinator process "dies" (the instance is abandoned, exactly what
// kill -9 leaves: a journal, no clean-shutdown marker), a fresh
// instance recovers from the same data directory, and a second worker
// drains the remainder. The dataset must be byte-identical to the
// in-process engine — the crash is invisible in the output.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/server"
	"repro/internal/worker"
)

func TestCoordinatorRestartMidCampaign(t *testing.T) {
	const ttl = 3 * time.Second
	dir := t.TempDir()
	ctx := context.Background()

	srv1, err := server.New(server.Config{DataDir: dir, Jobs: 1, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	c1 := apiclient.New(ts1.URL)

	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Worker A lands two shards, then abandons its batch mid-run.
	statsA, err := worker.Run(ctx, worker.Config{
		Client: c1, ID: "wA", Batch: 4, ExitAfterResults: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Accepted != 2 {
		t.Fatalf("worker A stats = %+v, want exactly 2 accepted", statsA)
	}
	ts1.Close() // the coordinator crashes: srv1 is never Close()d

	// A fresh coordinator on the same store recovers the job from its
	// journal: worker A's accepted shards are already done, its orphaned
	// leases restored (and left to lapse on the wall clock).
	srv2, err := server.New(server.Config{DataDir: dir, Jobs: 1, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	c2 := apiclient.New(ts2.URL)

	got, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "running" || got.ShardsDone != 2 {
		t.Fatalf("recovered job = state %s done %d/%d, want running with A's 2 shards kept",
			got.State, got.ShardsDone, got.ShardsTotal)
	}
	st, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 {
		t.Fatalf("stats.Recovered = %d, want 1", st.Recovered)
	}

	// Let A's restored leases lapse, then drain with worker B.
	time.Sleep(ttl + 200*time.Millisecond)
	statsB, err := worker.Run(ctx, worker.Config{
		Client: c2, ID: "wB", Batch: 4, ExitWhenIdle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := job.ShardsTotal - 2; statsB.Accepted != want {
		t.Fatalf("worker B stats = %+v, want %d accepted (no re-execution of A's shards)",
			statsB, want)
	}

	done, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" || done.ShardsDone != done.ShardsTotal {
		t.Fatalf("job after restart drain = %+v, want done", done)
	}
	served, err := c2.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := directDataset(t); !bytes.Equal(served, want) {
		t.Fatalf("dataset across coordinator crash (%d bytes) differs from campaign.Run (%d bytes)",
			len(served), len(want))
	}

	// The restarted process owns the recovery telemetry: the journal
	// replay restored A's two accepted shards and resumed the job.
	metrics, err := c2.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, metrics, `repro_recovery_jobs_total{outcome="resumed"}`); v != 1 {
		t.Fatalf("resumed recoveries = %v, want 1", v)
	}
	if v := metricValue(t, metrics, "repro_recovery_shards_total"); v != 2 {
		t.Fatalf("recovered shards = %v, want 2", v)
	}
}
