package worker_test

// Fault-injection tests: the worker's retry/backoff machinery driven
// through the chaos proxy against a real coordinator. Faults fire on
// deterministic request counters, so every run exercises the same
// drops, delays and duplicates.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/worker"
)

// directDataset is the in-process oracle for distSpec.
func directDataset(t *testing.T) []byte {
	t.Helper()
	spec, err := campaign.ParseSpec([]byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, res.Dataset); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerThroughChaosProxy: every 3rd request is severed and every
// 4th delayed, yet the worker drains the job to the exact bytes the
// in-process engine produces — the drops become transparent retries.
func TestWorkerThroughChaosProxy(t *testing.T) {
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Jobs: 1, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	target, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := &chaos.Proxy{
		Target:     target,
		DropEvery:  3,
		DelayEvery: 4,
		Delay:      20 * time.Millisecond,
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	ctx := context.Background()
	direct := apiclient.New(ts.URL)
	job, _, err := direct.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}

	stats, err := worker.Run(ctx, worker.Config{
		Client:       apiclient.New(front.URL),
		ID:           "chaos-w",
		Batch:        4,
		ExitWhenIdle: true,
		MaxRetries:   20,
		RetryBase:    10 * time.Millisecond,
		RetryCap:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != job.ShardsTotal {
		t.Fatalf("worker stats = %+v, want all %d shards accepted", stats, job.ShardsTotal)
	}
	if stats.Retries == 0 {
		t.Fatalf("worker stats = %+v: the proxy dropped requests but nothing retried", stats)
	}

	done, err := direct.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("job through chaos = %+v, want done", done)
	}
	served, err := direct.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := directDataset(t); !bytes.Equal(served, want) {
		t.Fatalf("dataset through chaos (%d bytes) differs from campaign.Run (%d bytes)",
			len(served), len(want))
	}
}

// TestDuplicatedUploadsAbsorbed: every upload is forwarded twice (the
// ambiguous failure — request applied, response lost, client re-sends).
// The coordinator's first-writer-wins dedup acks the visible send as
// "duplicate", progress counts each shard once, and the dataset is
// unchanged.
func TestDuplicatedUploadsAbsorbed(t *testing.T) {
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Jobs: 1, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	target, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := &chaos.Proxy{Target: target, DupEvery: 1}
	front := httptest.NewServer(proxy)
	defer front.Close()

	ctx := context.Background()
	direct := apiclient.New(ts.URL)
	duped := apiclient.New(front.URL)

	job, _, err := direct.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := direct.Claim(ctx, job.ID, "w1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := campaign.ParseSpec([]byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := cfg.CompileBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range claim.Shards {
		wire, err := campaign.ExecuteShard(cfg, bp, sh.Shard, sh.Slice)
		if err != nil {
			t.Fatal(err)
		}
		wire.SpecHash = claim.SpecHash
		ack, err := duped.PushShardResult(ctx, job.ID, sh.Index, "w1", sh.Lease, wire)
		if err != nil {
			t.Fatal(err)
		}
		// The shadow send applied first; the visible one is its replay.
		if ack.Status != "duplicate" {
			t.Fatalf("upload shard %d through dup proxy = %+v, want duplicate ack", sh.Index, ack)
		}
	}
	done, err := direct.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" || done.ShardsDone != done.ShardsTotal {
		t.Fatalf("job after duplicated uploads = %+v, want done with each shard counted once", done)
	}
	served, err := direct.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := directDataset(t); !bytes.Equal(served, want) {
		t.Fatalf("dataset after duplicated uploads differs from campaign.Run")
	}
}
