package asn

import (
	"testing"

	"repro/internal/iptable"
	"repro/internal/packet"
)

func sampleTable() *Table {
	t := NewTable()
	t.Add(iptable.MustParsePrefix("16.0.0.0/16"), Info{ASN: 64500, Name: "tier1-a", Tier: 1})
	t.Add(iptable.MustParsePrefix("16.1.0.0/16"), Info{ASN: 64501, Name: "transit-b", Tier: 2})
	t.Add(iptable.MustParsePrefix("16.2.0.0/16"), Info{ASN: 64502, Name: "stub-c", Tier: 3})
	return t
}

func TestLookup(t *testing.T) {
	tbl := sampleTable()
	info, ok := tbl.Lookup(packet.MustParseAddr("16.1.200.3"))
	if !ok || info.ASN != 64501 {
		t.Errorf("lookup = %+v,%v", info, ok)
	}
	if _, ok := tbl.Lookup(packet.MustParseAddr("99.0.0.1")); ok {
		t.Error("unknown address found")
	}
}

func TestByASN(t *testing.T) {
	tbl := sampleTable()
	info, ok := tbl.ByASN(64502)
	if !ok || info.Name != "stub-c" {
		t.Errorf("ByASN = %+v,%v", info, ok)
	}
	if _, ok := tbl.ByASN(1); ok {
		t.Error("unknown ASN found")
	}
}

func TestASCount(t *testing.T) {
	tbl := sampleTable()
	if tbl.ASCount() != 3 {
		t.Errorf("ASCount = %d", tbl.ASCount())
	}
	// Multiple prefixes from one AS count once.
	tbl.Add(iptable.MustParsePrefix("16.3.0.0/16"), Info{ASN: 64500, Name: "tier1-a", Tier: 1})
	if tbl.ASCount() != 3 {
		t.Errorf("ASCount after extra prefix = %d", tbl.ASCount())
	}
	if tbl.Len() != 4 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestBoundary(t *testing.T) {
	tbl := sampleTable()
	a := packet.MustParseAddr("16.0.0.1")
	b := packet.MustParseAddr("16.1.0.1")
	c := packet.MustParseAddr("16.1.0.2")
	x := packet.MustParseAddr("99.0.0.1")

	if boundary, det := tbl.Boundary(a, b); !det || !boundary {
		t.Error("cross-AS pair not detected as boundary")
	}
	if boundary, det := tbl.Boundary(b, c); !det || boundary {
		t.Error("same-AS pair detected as boundary")
	}
	if _, det := tbl.Boundary(a, x); det {
		t.Error("unmappable address reported determinable")
	}
}

func TestString(t *testing.T) {
	if sampleTable().String() == "" {
		t.Error("empty String()")
	}
}
