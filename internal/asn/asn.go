// Package asn maps IP addresses to autonomous system numbers, replacing
// the traceroute-to-AS mapping step of the study's Section 4.2 analysis.
//
// The paper inferred AS numbers from traceroute IP addresses "subject to
// the usual limitations of IP to AS mapping accuracy" (citing Zhang et
// al.). The topology generator emits an authoritative table here, plus —
// to preserve the stated uncertainty — border links whose interface
// addresses are deliberately numbered from the neighbouring AS's space,
// the classic source of IP-to-AS ambiguity at AS boundaries.
package asn

import (
	"fmt"

	"repro/internal/iptable"
	"repro/internal/packet"
)

// ASN is an autonomous system number.
type ASN uint32

// Info describes an autonomous system.
type Info struct {
	ASN  ASN
	Name string
	// Tier is 1 for the core clique, 2 for transit, 3 for stubs, 0 for
	// vantage/eyeball networks.
	Tier int
}

// Table maps prefixes to origin ASes.
type Table struct {
	prefixes iptable.Table[Info]
	byASN    map[ASN]Info
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{byASN: make(map[ASN]Info)}
}

// Add registers a prefix originated by an AS.
func (t *Table) Add(p iptable.Prefix, info Info) {
	t.prefixes.Insert(p, info)
	t.byASN[info.ASN] = info
}

// Lookup resolves the origin AS of an address.
func (t *Table) Lookup(a packet.Addr) (Info, bool) {
	info, _, ok := t.prefixes.Lookup(a)
	return info, ok
}

// ByASN returns the registered info for an AS number.
func (t *Table) ByASN(n ASN) (Info, bool) {
	info, ok := t.byASN[n]
	return info, ok
}

// Len reports registered prefix count.
func (t *Table) Len() int { return t.prefixes.Len() }

// ASCount reports the number of distinct ASes (the paper observed 1400
// ASes in its traceroute data).
func (t *Table) ASCount() int { return len(t.byASN) }

// Boundary reports whether consecutive path addresses a and b map to
// different ASes. Either side missing from the table counts as not
// determinable (the paper only attributes strips to AS boundaries "where
// we were able to determine the AS").
func (t *Table) Boundary(a, b packet.Addr) (boundary, determinable bool) {
	ia, okA := t.Lookup(a)
	ib, okB := t.Lookup(b)
	if !okA || !okB {
		return false, false
	}
	return ia.ASN != ib.ASN, true
}

// String describes the table.
func (t *Table) String() string {
	return fmt.Sprintf("asn.Table{%d prefixes, %d ASes}", t.Len(), t.ASCount())
}
