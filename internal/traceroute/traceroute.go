// Package traceroute implements the Section 4.2 measurement: TTL-limited
// ECT(0)-marked UDP probes whose ICMP time-exceeded responses quote the
// offending IP header, letting the sender determine at which hop the ECN
// field was rewritten. The technique follows Bauer et al., tracebox and
// Malone & Luckie's ICMP-quotation analysis, as cited by the paper.
//
// Probes use the classic incrementing destination port so each ICMP
// quotation identifies exactly one probe (the simulated network has no
// ECMP, so per-probe ports cost nothing in path stability). A Mux
// installed on the probing host demultiplexes ICMP errors to concurrent
// sessions by the quoted destination address, allowing a vantage point to
// trace many targets in parallel.
package traceroute

import (
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Config controls a traceroute run.
type Config struct {
	// MaxTTL is the deepest hop probed (default 30).
	MaxTTL int
	// ProbesPerHop is the number of probes sent per TTL (default 2);
	// repeated probes expose "sometimes-strip" hops.
	ProbesPerHop int
	// Timeout per probe (default 500ms).
	Timeout time.Duration
	// ECN is the codepoint probes carry (default ECT(0), as the study
	// used).
	ECN ecn.Codepoint
	// BasePort is the first destination port (default 33434).
	BasePort uint16
	// StopAfterSilent ends the trace after this many consecutive
	// unresponsive TTLs (default 3) — the study's traces "generally stop
	// one hop before the destination".
	StopAfterSilent int
}

func (c Config) withDefaults() Config {
	if c.MaxTTL == 0 {
		c.MaxTTL = 30
	}
	if c.ProbesPerHop == 0 {
		c.ProbesPerHop = 2
	}
	if c.Timeout == 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.ECN == 0 {
		c.ECN = ecn.ECT0
	}
	if c.BasePort == 0 {
		c.BasePort = 33434
	}
	if c.StopAfterSilent == 0 {
		c.StopAfterSilent = 3
	}
	return c
}

// Observation is a single probe's outcome: one (hop, probe) data point.
// The paper's 155439 "IP level hops" are observations in this sense.
type Observation struct {
	TTL     int
	Attempt int
	// Responded reports whether an ICMP error came back for this probe.
	Responded bool
	// Hop is the router that answered (ICMP source).
	Hop packet.Addr
	// SentECN and QuotedECN compare the codepoint transmitted with the
	// codepoint quoted back; Transition classifies the difference.
	SentECN    ecn.Codepoint
	QuotedECN  ecn.Codepoint
	Transition ecn.Transition
	RTT        time.Duration
	// ReachedDest marks a port-unreachable from the target itself.
	ReachedDest bool
}

// PathObservation attributes one hop observation to a vantage point and
// traceroute target — the row format the Figure 4 analysis consumes.
type PathObservation struct {
	Vantage string
	Target  packet.Addr
	Observation
}

// Result is a completed traceroute.
type Result struct {
	Target       packet.Addr
	Observations []Observation
	// ReachedDest reports whether any probe got a terminal answer from
	// the target (rare here: pool hosts drop high-port UDP silently).
	ReachedDest bool
}

// Hops condenses observations into one entry per TTL (first responding
// probe wins), up to the last responsive hop — the per-path view drawn
// in Figure 4.
func (r *Result) Hops() []Observation {
	byTTL := map[int]Observation{}
	maxTTL := 0
	for _, o := range r.Observations {
		if !o.Responded {
			continue
		}
		if prev, ok := byTTL[o.TTL]; !ok || o.Attempt < prev.Attempt {
			byTTL[o.TTL] = o
		}
		if o.TTL > maxTTL {
			maxTTL = o.TTL
		}
	}
	hops := make([]Observation, 0, maxTTL)
	for ttl := 1; ttl <= maxTTL; ttl++ {
		if o, ok := byTTL[ttl]; ok {
			hops = append(hops, o)
		} else {
			hops = append(hops, Observation{TTL: ttl}) // silent hop: "*"
		}
	}
	return hops
}

// Mux demultiplexes ICMP messages on a host to traceroute sessions keyed
// by target (quoted destination) address. Install exactly one per host.
type Mux struct {
	host     *netsim.Host
	sessions map[packet.Addr]*session
}

// NewMux installs the demultiplexer as the host's ICMP handler.
func NewMux(h *netsim.Host) *Mux {
	m := &Mux{host: h, sessions: make(map[packet.Addr]*session)}
	h.OnICMP(m.handle)
	return m
}

func (m *Mux) handle(h *netsim.Host, ip packet.IPv4Header, msg packet.ICMPMessage) {
	if msg.Type != packet.ICMPTimeExceeded && msg.Type != packet.ICMPDestUnreachable {
		return
	}
	quoted, transport, err := msg.Quotation()
	if err != nil || quoted.Src != h.Addr() {
		return
	}
	s, ok := m.sessions[quoted.Dst]
	if !ok {
		return
	}
	s.onICMP(ip, msg, quoted, transport)
}

// Run traces one target, invoking done exactly once. Concurrent Runs on
// one Mux must target distinct addresses (a second session to the same
// target is rejected with an immediate empty result).
func (m *Mux) Run(target packet.Addr, cfg Config, done func(Result)) {
	cfg = cfg.withDefaults()
	if _, busy := m.sessions[target]; busy {
		done(Result{Target: target})
		return
	}
	s := &session{
		mux:    m,
		cfg:    cfg,
		target: target,
		res:    Result{Target: target},
		done:   done,
	}
	m.sessions[target] = s
	s.start()
}

// session is one in-flight traceroute.
type session struct {
	mux    *Mux
	cfg    Config
	target packet.Addr
	res    Result
	done   func(Result)

	srcPort    uint16
	probeIdx   int // sequential probe counter → dst port offset
	ttl        int
	attempt    int
	sentAt     time.Duration
	timer      netsim.Timer
	silentTTLs int
	responded  bool // any response at current TTL
	finished   bool
}

func (s *session) start() {
	port, err := s.mux.host.BindUDP(0, func(*netsim.Host, packet.IPv4Header, packet.UDPHeader, []byte) {
		// A direct UDP response would mean the target answered the probe
		// port; not modelled, but the bind reserves our source port.
	})
	if err != nil {
		s.finish()
		return
	}
	s.srcPort = port
	s.ttl = 1
	s.attempt = 0
	s.sendProbe()
}

func (s *session) dstPort(idx int) uint16 { return s.cfg.BasePort + uint16(idx) }

func (s *session) sendProbe() {
	if s.finished {
		return
	}
	sim := s.mux.host.Sim()
	s.sentAt = sim.Now()
	idx := s.probeIdx
	payload := []byte{byte(idx >> 8), byte(idx)} // tiny payload, quoted back
	_ = s.mux.host.SendUDP(s.target, s.srcPort, s.dstPort(idx), uint8(s.ttl), s.cfg.ECN, payload)
	s.timer = sim.After(s.cfg.Timeout, s.onTimeout)
}

// advance moves to the next probe or TTL, applying stop conditions.
func (s *session) advance() {
	s.probeIdx++
	s.attempt++
	if s.attempt < s.cfg.ProbesPerHop {
		s.sendProbe()
		return
	}
	// TTL complete.
	if !s.responded {
		s.silentTTLs++
	} else {
		s.silentTTLs = 0
	}
	if s.silentTTLs >= s.cfg.StopAfterSilent || s.ttl >= s.cfg.MaxTTL || s.res.ReachedDest {
		s.finish()
		return
	}
	s.ttl++
	s.attempt = 0
	s.responded = false
	s.sendProbe()
}

func (s *session) onTimeout() {
	if s.finished {
		return
	}
	s.res.Observations = append(s.res.Observations, Observation{
		TTL:     s.ttl,
		Attempt: s.attempt,
		SentECN: s.cfg.ECN,
	})
	s.advance()
}

func (s *session) onICMP(ip packet.IPv4Header, msg packet.ICMPMessage, quoted packet.IPv4Header, transport []byte) {
	if s.finished || quoted.Protocol != packet.ProtoUDP || len(transport) < 4 {
		return
	}
	srcPort := uint16(transport[0])<<8 | uint16(transport[1])
	dstPort := uint16(transport[2])<<8 | uint16(transport[3])
	if srcPort != s.srcPort || dstPort != s.dstPort(s.probeIdx) {
		return // stale probe (earlier TTL): ignore
	}
	s.timer.Stop()
	obs := Observation{
		TTL:        s.ttl,
		Attempt:    s.attempt,
		Responded:  true,
		Hop:        ip.Src,
		SentECN:    s.cfg.ECN,
		QuotedECN:  quoted.ECN(),
		Transition: ecn.Classify(s.cfg.ECN, quoted.ECN()),
		RTT:        s.mux.host.Sim().Now() - s.sentAt,
	}
	if msg.Type == packet.ICMPDestUnreachable && ip.Src == s.target {
		obs.ReachedDest = true
		s.res.ReachedDest = true
	}
	s.res.Observations = append(s.res.Observations, obs)
	s.responded = true
	s.advance()
}

func (s *session) finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.timer.Stop()
	s.mux.host.UnbindUDP(s.srcPort)
	delete(s.mux.sessions, s.target)
	s.done(s.res)
}
