package traceroute

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// When the destination host answers high-port UDP with ICMP port
// unreachable (not the pool default, but real traceroute targets often
// do), the trace terminates at the destination and reports it reached.
func TestReachedDestViaPortUnreachable(t *testing.T) {
	f := newChain(t, 8, 4)
	f.server.RespondPortUnreachable = true

	mux := NewMux(f.client)
	var got Result
	mux.Run(f.server.Addr(), Config{}, func(r Result) { got = r })
	f.sim.Run()

	if !got.ReachedDest {
		t.Fatal("destination not detected despite port-unreachable")
	}
	hops := got.Hops()
	// 4 routers + the destination itself as the final answering hop.
	if len(hops) != 5 {
		t.Fatalf("hops = %d, want 5", len(hops))
	}
	last := hops[len(hops)-1]
	if !last.ReachedDest || last.Hop != f.server.Addr() {
		t.Errorf("final hop = %+v", last)
	}
	// The quotation from the destination still carries the ECN verdict.
	if last.Transition != ecn.Preserved {
		t.Errorf("destination quotation transition = %v", last.Transition)
	}
}

// A trace to an address with no route dies silently and terminates by
// the stop-after-silence rule.
func TestUnroutableTargetTerminates(t *testing.T) {
	f := newChain(t, 9, 3)
	mux := NewMux(f.client)
	var got Result
	mux.Run(packet.AddrFrom4(203, 0, 113, 99), Config{
		Timeout:         50 * time.Millisecond,
		StopAfterSilent: 2,
		ProbesPerHop:    1,
	}, func(r Result) { got = r })
	f.sim.Run()
	if got.ReachedDest {
		t.Error("unroutable target reported reached")
	}
	// TTL=1 expires AT the first router, before any route lookup, so
	// hop 1 answers; deeper probes die at the no-route drop and stay
	// silent — exactly how a real traceroute to a blackholed prefix
	// looks.
	for _, o := range got.Observations {
		if o.TTL == 1 && !o.Responded {
			t.Error("first hop silent; TTL expiry precedes routing")
		}
		if o.TTL > 1 && o.Responded {
			t.Errorf("unexpected response beyond the blackhole: %+v", o)
		}
	}
}
