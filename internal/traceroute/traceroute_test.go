package traceroute

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// chainFixture builds client — r0 — r1 — ... — r(n-1) — server.
type chainFixture struct {
	sim     *netsim.Sim
	net     *netsim.Network
	client  *netsim.Host
	server  *netsim.Host
	routers []*netsim.Router
}

func newChain(t *testing.T, seed int64, nRouters int) *chainFixture {
	t.Helper()
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	routers := make([]*netsim.Router, nRouters)
	for i := range routers {
		routers[i] = n.AddRouter("r", packet.AddrFrom4(10, 255, byte(i), 1), uint32(64500+i))
	}
	for i := 0; i+1 < nRouters; i++ {
		n.Connect(routers[i], routers[i+1], time.Millisecond, 0)
	}
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, routers[0], time.Millisecond, 0)
	n.Attach(server, routers[nRouters-1], time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return &chainFixture{sim: sim, net: n, client: client, server: server, routers: routers}
}

func TestCleanPathAllPreserved(t *testing.T) {
	f := newChain(t, 1, 6)
	mux := NewMux(f.client)
	var got Result
	mux.Run(f.server.Addr(), Config{}, func(r Result) { got = r })
	f.sim.Run()

	hops := got.Hops()
	if len(hops) != 6 {
		t.Fatalf("hops = %d, want 6", len(hops))
	}
	for i, h := range hops {
		if !h.Responded {
			t.Errorf("hop %d silent", i+1)
			continue
		}
		if h.Hop != f.routers[i].Addr() {
			t.Errorf("hop %d = %s, want %s", i+1, h.Hop, f.routers[i].Addr())
		}
		if h.Transition != ecn.Preserved {
			t.Errorf("hop %d transition = %v", i+1, h.Transition)
		}
		if h.QuotedECN != ecn.ECT0 {
			t.Errorf("hop %d quoted = %v", i+1, h.QuotedECN)
		}
	}
	if got.ReachedDest {
		t.Error("pool hosts must not answer high-port probes")
	}
}

func TestBleacherVisibleFromItsHopOnward(t *testing.T) {
	f := newChain(t, 2, 7)
	// Bleacher at router index 3 (hop 4).
	f.routers[3].AddPolicy(&middlebox.ECNBleacher{Probability: 1})
	mux := NewMux(f.client)
	var got Result
	mux.Run(f.server.Addr(), Config{}, func(r Result) { got = r })
	f.sim.Run()

	hops := got.Hops()
	if len(hops) != 7 {
		t.Fatalf("hops = %d", len(hops))
	}
	for i, h := range hops {
		want := ecn.Preserved
		if i >= 3 { // the bleaching hop quotes the already-bleached header
			want = ecn.Bleached
		}
		if h.Transition != want {
			t.Errorf("hop %d transition = %v, want %v (runs of red after the strip)", i+1, h.Transition, want)
		}
	}
}

func TestSometimesBleacherMixedVerdicts(t *testing.T) {
	f := newChain(t, 3, 5)
	f.routers[2].AddPolicy(&middlebox.ECNBleacher{Probability: 0.5, RNG: f.sim.RNG()})
	mux := NewMux(f.client)

	bleached, preserved := 0, 0
	doneCount := 0
	var run func(i int)
	run = func(i int) {
		if i == 30 {
			return
		}
		mux.Run(f.server.Addr(), Config{ProbesPerHop: 1}, func(r Result) {
			doneCount++
			for _, o := range r.Observations {
				if o.TTL == 3 && o.Responded {
					switch o.Transition {
					case ecn.Bleached:
						bleached++
					case ecn.Preserved:
						preserved++
					}
				}
			}
			run(i + 1)
		})
	}
	run(0)
	f.sim.Run()
	if doneCount != 30 {
		t.Fatalf("completed %d traces", doneCount)
	}
	if bleached == 0 || preserved == 0 {
		t.Errorf("sometimes-bleacher gave bleached=%d preserved=%d; want both", bleached, preserved)
	}
}

func TestTraceStopsAfterSilence(t *testing.T) {
	f := newChain(t, 4, 4)
	// A policy that silently eats the probes beyond hop 2: use an
	// ECT-UDP dropper at router 2 (probes are ECT-marked UDP).
	f.routers[2].AddPolicy(&middlebox.ECTUDPDropper{})
	mux := NewMux(f.client)
	var got Result
	start := f.sim.Now()
	mux.Run(f.server.Addr(), Config{StopAfterSilent: 2, Timeout: 100 * time.Millisecond}, func(r Result) { got = r })
	f.sim.Run()

	hops := got.Hops()
	// Hops 1 and 2 respond (TTL expires before/at the dropper's router —
	// the dropper's own router sees TTL hit zero before policy? No:
	// policies run on ingress, so hop 3's probes die at router 2's
	// policy. Expect 2 responding hops.
	if len(hops) != 2 {
		t.Fatalf("responsive hops = %d, want 2", len(hops))
	}
	elapsed := f.sim.Now() - start
	// 2 TTLs responsive + 2 silent TTLs × 2 probes × 100ms ≈ 400ms + RTTs.
	if elapsed > 2*time.Second {
		t.Errorf("trace took %v; stop-after-silence broken", elapsed)
	}
}

func TestObservationCountBookkeeping(t *testing.T) {
	f := newChain(t, 5, 3)
	mux := NewMux(f.client)
	var got Result
	mux.Run(f.server.Addr(), Config{ProbesPerHop: 3, StopAfterSilent: 1, Timeout: 50 * time.Millisecond}, func(r Result) { got = r })
	f.sim.Run()

	// 3 responsive TTLs ×3 probes + 1 silent TTL ×3 probes = 12.
	if len(got.Observations) != 12 {
		t.Fatalf("observations = %d, want 12", len(got.Observations))
	}
	responded := 0
	for _, o := range got.Observations {
		if o.Responded {
			responded++
			if o.RTT <= 0 {
				t.Error("responded observation with zero RTT")
			}
		}
	}
	if responded != 9 {
		t.Errorf("responded = %d, want 9", responded)
	}
}

func TestConcurrentSessions(t *testing.T) {
	// Two targets behind different branches; both traced in parallel on
	// one mux.
	sim := netsim.NewSim(6)
	n := netsim.NewNetwork(sim)
	root := n.AddRouter("root", packet.AddrFrom4(10, 255, 0, 1), 64500)
	left := n.AddRouter("left", packet.AddrFrom4(10, 255, 1, 1), 64501)
	right := n.AddRouter("right", packet.AddrFrom4(10, 255, 2, 1), 64502)
	n.Connect(root, left, time.Millisecond, 0)
	n.Connect(root, right, time.Millisecond, 0)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	s1, _ := n.AddHost("s1", packet.AddrFrom4(10, 0, 1, 1))
	s2, _ := n.AddHost("s2", packet.AddrFrom4(10, 0, 2, 1))
	n.Attach(client, root, time.Millisecond, 0)
	n.Attach(s1, left, time.Millisecond, 0)
	n.Attach(s2, right, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	// Bleach only the right branch.
	right.AddPolicy(&middlebox.ECNBleacher{Probability: 1})

	mux := NewMux(client)
	var r1, r2 Result
	mux.Run(s1.Addr(), Config{}, func(r Result) { r1 = r })
	mux.Run(s2.Addr(), Config{}, func(r Result) { r2 = r })
	sim.Run()

	h1, h2 := r1.Hops(), r2.Hops()
	if len(h1) != 2 || len(h2) != 2 {
		t.Fatalf("hops = %d,%d want 2,2", len(h1), len(h2))
	}
	if h1[1].Transition != ecn.Preserved {
		t.Error("left branch should preserve")
	}
	if h2[1].Transition != ecn.Bleached {
		t.Error("right branch should bleach")
	}
}

func TestDuplicateTargetRejected(t *testing.T) {
	f := newChain(t, 7, 3)
	mux := NewMux(f.client)
	first := false
	mux.Run(f.server.Addr(), Config{}, func(r Result) { first = true })
	gotEmpty := false
	mux.Run(f.server.Addr(), Config{}, func(r Result) {
		gotEmpty = len(r.Observations) == 0
	})
	f.sim.Run()
	if !first {
		t.Error("first session never completed")
	}
	if !gotEmpty {
		t.Error("duplicate session not rejected with empty result")
	}
}

func TestHopsHandlesGaps(t *testing.T) {
	r := Result{Observations: []Observation{
		{TTL: 1, Responded: true, Hop: packet.AddrFrom4(1, 1, 1, 1)},
		// TTL 2 silent
		{TTL: 3, Responded: true, Hop: packet.AddrFrom4(3, 3, 3, 3)},
	}}
	hops := r.Hops()
	if len(hops) != 3 {
		t.Fatalf("hops = %d", len(hops))
	}
	if hops[1].Responded {
		t.Error("gap hop should be silent")
	}
}
