package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// The paper's headline proportion with its sampling uncertainty: 2230
// of 2253 servers reachable.
func ExampleWilsonInterval() {
	lo, hi := stats.WilsonInterval(2230, 2253)
	fmt.Printf("98.97%% [%.2f%%, %.2f%%]\n", 100*lo, 100*hi)
	// Output: 98.97% [98.47%, 99.32%]
}

// Table 2's association measure: a 2×2 contingency of "blocked via
// ECT-UDP" against "refuses TCP ECN".
func ExamplePhi() {
	// 4 blocked+refusing, 9 blocked+negotiating,
	// 240 fine+refusing, 1100 fine+negotiating.
	fmt.Printf("phi = %.3f\n", stats.Phi(4, 9, 240, 1100))
	// Output: phi = 0.033
}
