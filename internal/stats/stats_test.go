package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanMinMax(t *testing.T) {
	xs := []float64{4, 1, 7, 2}
	if Mean(xs) != 3.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 7 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty input should give zeros")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !approx(got, 2, 1e-9) {
		t.Errorf("stddev = %v, want 2", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single value stddev should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !approx(got, 1.5, 1e-9) {
		t.Errorf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(2230, 2253)
	if !(lo < 0.9897 && 0.9897 < hi) {
		t.Errorf("interval [%v, %v] should contain the point estimate", lo, hi)
	}
	if hi > 1 || lo < 0 {
		t.Error("interval outside [0,1]")
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Error("empty trials should give [0,1]")
	}
	// Perfect success keeps hi at 1 but lo below 1.
	lo, hi = WilsonInterval(50, 50)
	if lo >= 1 || hi > 1 {
		t.Errorf("perfect success interval [%v, %v]", lo, hi)
	}
}

func TestWilsonIntervalOrderProperty(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := WilsonInterval(k, n)
		p := float64(k) / float64(n)
		return lo <= p+1e-12 && p <= hi+1e-12 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPhi(t *testing.T) {
	// Perfect positive association.
	if got := Phi(10, 0, 0, 10); !approx(got, 1, 1e-9) {
		t.Errorf("perfect phi = %v", got)
	}
	// Perfect negative association.
	if got := Phi(0, 10, 10, 0); !approx(got, -1, 1e-9) {
		t.Errorf("negative phi = %v", got)
	}
	// Independence: rows proportional.
	if got := Phi(20, 20, 5, 5); !approx(got, 0, 1e-9) {
		t.Errorf("independent phi = %v", got)
	}
	// Degenerate margins.
	if Phi(0, 0, 0, 0) != 0 {
		t.Error("degenerate table should be 0")
	}
}

func TestPhiBoundedProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		got := Phi(int(a), int(b), int(c), int(d))
		return got >= -1-1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
