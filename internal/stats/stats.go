// Package stats provides the small statistical toolkit the analysis
// package needs: summary statistics, quantiles, a binomial confidence
// interval for reachability proportions, and the phi coefficient used to
// quantify the (weak) UDP/TCP correlation of Table 2.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest value (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// WilsonInterval returns the 95% Wilson score interval for k successes
// in n trials — the right interval for proportions near 1, like the
// paper's 98.97% reachability.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	centre := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi = centre-half, centre+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Phi computes the phi coefficient (mean-square contingency) of a 2×2
// table given the four cell counts:
//
//	       B     !B
//	A      n11   n10
//	!A     n01   n00
//
// Values near 0 indicate no association — the paper's finding for
// "unreachable via ECT(0) UDP" vs "refuses ECN with TCP".
func Phi(n11, n10, n01, n00 int) float64 {
	a, b, c, d := float64(n11), float64(n10), float64(n01), float64(n00)
	denom := math.Sqrt((a + b) * (c + d) * (a + c) * (b + d))
	if denom == 0 {
		return 0
	}
	return (a*d - b*c) / denom
}
