package dnspool

import (
	"testing"
	"time"

	"repro/internal/packet"
)

func TestDiscoverSkipsUnknownZones(t *testing.T) {
	sim, client, resolver, _ := simDirectory(t, 6, nil)
	var got DiscoverResult
	// One legitimate zone plus one that does not exist: NXDOMAIN answers
	// must not stall or abort the loop.
	Discover(client, DiscoverConfig{
		Resolver:      resolver,
		Zones:         []string{"xx"},
		Rounds:        3,
		RoundInterval: 10 * time.Second,
	}, func(r DiscoverResult) { got = r })
	sim.Run()
	if len(got.Servers) != 6 {
		t.Errorf("discovered %d of 6 despite bogus zone", len(got.Servers))
	}
	// The bogus zone was still queried (and answered NXDOMAIN).
	if got.QueriesSent != 3*2 {
		t.Errorf("queries = %d, want 6", got.QueriesSent)
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	run := func() []packet.Addr {
		sim, client, resolver, _ := simDirectory(t, 12, map[int]string{0: "uk", 5: "uk"})
		var got DiscoverResult
		Discover(client, DiscoverConfig{
			Resolver:      resolver,
			Zones:         []string{"uk"},
			Rounds:        4,
			RoundInterval: time.Minute,
		}, func(r DiscoverResult) { got = r })
		sim.Run()
		return got.Servers
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("server %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestDiscoverDedupAcrossZones(t *testing.T) {
	// Every server is in both the apex and its country zone: the result
	// must still be deduplicated.
	zones := map[int]string{}
	for i := 0; i < 8; i++ {
		zones[i] = "de"
	}
	sim, client, resolver, _ := simDirectory(t, 8, zones)
	var got DiscoverResult
	Discover(client, DiscoverConfig{
		Resolver:      resolver,
		Zones:         []string{"de"},
		Rounds:        4,
		RoundInterval: time.Minute,
	}, func(r DiscoverResult) { got = r })
	sim.Run()
	if len(got.Servers) != 8 {
		t.Errorf("deduplicated set = %d, want 8", len(got.Servers))
	}
}

func TestResolveRotationIsFair(t *testing.T) {
	d := NewDirectory()
	const n = 23 // not a multiple of AnswersPerQuery: exercises wrap
	for i := 0; i < n; i++ {
		d.AddServer(poolAddr(i))
	}
	counts := map[packet.Addr]int{}
	const rounds = 4 * n / AnswersPerQuery // each member seen ≈4 times
	for q := 0; q < rounds; q++ {
		addrs, _ := d.Resolve(BaseZone)
		for _, a := range addrs {
			counts[a]++
		}
	}
	if len(counts) != n {
		t.Fatalf("rotation reached %d of %d members", len(counts), n)
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("rotation unfair: counts span [%d, %d]", min, max)
	}
}
