package dnspool

import (
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// DNSPort is the well-known DNS UDP port.
const DNSPort = 53

// AnswersPerQuery is how many A records the pool returns per query,
// matching the live pool's behaviour of handing out small rotating sets.
const AnswersPerQuery = 4

// AnswerTTL is the short TTL the pool uses to keep rotation effective.
const AnswerTTL = 150

// BaseZone is the pool's apex domain.
const BaseZone = "pool.ntp.org"

// Directory is the simulated pool DNS service: a set of zones, each
// holding member servers, answered round-robin. It attaches to a
// simulated host on UDP port 53.
type Directory struct {
	zones map[string]*zone

	// Queries counts requests served, for tests.
	Queries uint64
}

type zone struct {
	members []packet.Addr
	cursor  int
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{zones: make(map[string]*zone)}
}

// AddServer registers an NTP server under the apex zone and any
// sub-zones (e.g. "uk", "europe"). Zone names are the DNS labels to the
// left of pool.ntp.org.
func (d *Directory) AddServer(addr packet.Addr, subzones ...string) {
	d.addTo(BaseZone, addr)
	for _, sz := range subzones {
		if sz == "" {
			continue
		}
		d.addTo(sz+"."+BaseZone, addr)
	}
}

func (d *Directory) addTo(name string, addr packet.Addr) {
	z := d.zones[strings.ToLower(name)]
	if z == nil {
		z = &zone{}
		d.zones[strings.ToLower(name)] = z
	}
	z.members = append(z.members, addr)
}

// Clone returns a directory with the same zone membership and fresh
// round-robin cursors. The member lists are shared (they are append-only
// once built), so cloning a 2500-server directory copies only the zone
// index — the campaign engine clones its blueprint's directory into
// every shard simulation this way.
func (d *Directory) Clone() *Directory {
	c := NewDirectory()
	for name, z := range d.zones {
		// Full-slice expression clamps capacity to length: an AddServer
		// on the clone then reallocates instead of appending in place
		// over the template's backing array, which sibling clones and
		// the frozen blueprint share.
		c.zones[name] = &zone{members: z.members[:len(z.members):len(z.members)]}
	}
	return c
}

// Zones lists the zone names in sorted order.
func (d *Directory) Zones() []string {
	names := make([]string, 0, len(d.zones))
	for n := range d.zones {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ZoneSize reports the number of members of a zone.
func (d *Directory) ZoneSize(name string) int {
	if z := d.zones[strings.ToLower(name)]; z != nil {
		return len(z.members)
	}
	return 0
}

// Resolve answers a single query, advancing the zone's round-robin
// cursor. It returns up to AnswersPerQuery addresses and reports whether
// the zone exists. The rotation is deterministic — repeated queries
// enumerate the full membership — which mirrors how the paper's
// repeated ten-minute polls eventually discovered 2500 distinct servers.
func (d *Directory) Resolve(name string) ([]packet.Addr, bool) {
	z := d.zones[strings.ToLower(name)]
	if z == nil || len(z.members) == 0 {
		return nil, false
	}
	n := AnswersPerQuery
	if n > len(z.members) {
		n = len(z.members)
	}
	out := make([]packet.Addr, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, z.members[(z.cursor+i)%len(z.members)])
	}
	z.cursor = (z.cursor + n) % len(z.members)
	return out, true
}

// AttachSim binds the directory to UDP port 53 on a simulated host.
func (d *Directory) AttachSim(h *netsim.Host) error {
	_, err := h.BindUDP(DNSPort, func(host *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		query, err := Parse(payload)
		if err != nil || query.IsResponse() || len(query.Questions) != 1 {
			return
		}
		d.Queries++
		q := query.Questions[0]
		resp := Message{
			ID:        query.ID,
			Flags:     FlagQR | FlagAA | (query.Flags & FlagRD) | FlagRA,
			Questions: query.Questions,
		}
		if q.Type == TypeA && q.Class == ClassIN {
			if addrs, ok := d.Resolve(q.Name); ok {
				for _, a := range addrs {
					resp.Answers = append(resp.Answers, ResourceRecord{
						Name: q.Name, Type: TypeA, Class: ClassIN, TTL: AnswerTTL, Addr: a,
					})
				}
			} else {
				resp.RCode = RCodeNXDomain
			}
		}
		wire, err := resp.Marshal()
		if err != nil {
			return
		}
		// Responses to well-formed queries cannot fail to serialize.
		_ = host.SendUDP(ip.Src, udp.DstPort, udp.SrcPort, 64, 0 /* not-ECT */, wire)
	})
	return err
}
