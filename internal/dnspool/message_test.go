package dnspool

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "uk.pool.ntp.org")
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.IsResponse() {
		t.Errorf("header = %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "uk.pool.ntp.org" ||
		got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", got.Questions)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	m := Message{
		ID:        7,
		Flags:     FlagQR | FlagAA,
		Questions: []Question{{Name: "pool.ntp.org", Type: TypeA, Class: ClassIN}},
		Answers: []ResourceRecord{
			{Name: "pool.ntp.org", Type: TypeA, Class: ClassIN, TTL: 150, Addr: packet.MustParseAddr("192.0.2.1")},
			{Name: "pool.ntp.org", Type: TypeA, Class: ClassIN, TTL: 150, Addr: packet.MustParseAddr("192.0.2.2")},
		},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsResponse() || len(got.Answers) != 2 {
		t.Fatalf("parsed = %+v", got)
	}
	if got.Answers[1].Addr != packet.MustParseAddr("192.0.2.2") {
		t.Errorf("answer addr = %s", got.Answers[1].Addr)
	}
	if got.Answers[0].TTL != 150 {
		t.Errorf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	m := Message{ID: 1, Flags: FlagQR, RCode: RCodeNXDomain,
		Questions: []Question{{Name: "nope.pool.ntp.org", Type: TypeA, Class: ClassIN}}}
	wire, _ := m.Marshal()
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeNXDomain {
		t.Errorf("rcode = %d", got.RCode)
	}
}

func TestParseCompressedName(t *testing.T) {
	// Hand-build a response whose answer name is a pointer to the
	// question name, the classic compression real resolvers emit.
	q := NewQuery(9, "pool.ntp.org")
	wire, _ := q.Marshal()
	// Patch header: QR bit, ancount = 1.
	wire[2] |= 0x80
	wire[7] = 1
	// Answer: pointer to offset 12 (question name), type A, class IN,
	// TTL 60, rdlen 4, addr.
	wire = append(wire,
		0xC0, 12,
		0, 1, 0, 1,
		0, 0, 0, 60,
		0, 4,
		203, 0, 113, 5)
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Name != "pool.ntp.org" {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if got.Answers[0].Addr != packet.AddrFrom4(203, 0, 113, 5) {
		t.Errorf("addr = %s", got.Answers[0].Addr)
	}
}

func TestParseRejectsPointerLoop(t *testing.T) {
	q := NewQuery(9, "pool.ntp.org")
	wire, _ := q.Marshal()
	wire[2] |= 0x80
	wire[7] = 1
	// Pointer to itself at the answer name position.
	self := len(wire)
	wire = append(wire, 0xC0, byte(self), 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4)
	if _, err := Parse(wire); err == nil {
		t.Error("self-pointing name accepted")
	}
}

func TestMarshalRejectsBadLabels(t *testing.T) {
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'a'
	}
	for _, name := range []string{"..pool.ntp.org", string(long) + ".org"} {
		m := NewQuery(1, name)
		if _, err := m.Marshal(); err == nil {
			t.Errorf("Marshal accepted name %q", name)
		}
	}
}

func TestParseTruncations(t *testing.T) {
	q := NewQuery(3, "pool.ntp.org")
	wire, _ := q.Marshal()
	for cut := 1; cut < len(wire); cut += 3 {
		if _, err := Parse(wire[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestParseRootName(t *testing.T) {
	m := NewQuery(4, ".")
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "" {
		t.Errorf("root name = %q", got.Questions[0].Name)
	}
}

// Property: names composed of safe labels round-trip.
func TestNameRoundTripProperty(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789-"
	f := func(seedLabels []uint8) bool {
		name := ""
		for i, s := range seedLabels {
			if i == 4 {
				break
			}
			l := int(s%20) + 1
			label := ""
			for j := 0; j < l; j++ {
				label += string(letters[(int(s)+j)%len(letters)])
			}
			if name != "" {
				name += "."
			}
			name += label
		}
		if name == "" {
			name = "x"
		}
		m := NewQuery(1, name)
		wire, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(wire)
		return err == nil && got.Questions[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
