package dnspool

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
)

func poolAddr(i int) packet.Addr {
	return packet.AddrFrom4(20, byte(i>>8), byte(i), 1)
}

func TestDirectoryRoundRobinCoversAll(t *testing.T) {
	d := NewDirectory()
	const n = 10
	for i := 0; i < n; i++ {
		d.AddServer(poolAddr(i), "uk")
	}
	seen := map[packet.Addr]bool{}
	for q := 0; q < 3; q++ { // 3 queries × 4 answers ≥ 10 members
		addrs, ok := d.Resolve("pool.ntp.org")
		if !ok {
			t.Fatal("zone missing")
		}
		if len(addrs) != AnswersPerQuery {
			t.Fatalf("answers = %d", len(addrs))
		}
		for _, a := range addrs {
			seen[a] = true
		}
	}
	if len(seen) != n {
		t.Errorf("round robin covered %d of %d", len(seen), n)
	}
}

func TestDirectoryZones(t *testing.T) {
	d := NewDirectory()
	d.AddServer(poolAddr(1), "uk", "europe")
	d.AddServer(poolAddr(2), "de", "europe")
	if d.ZoneSize("pool.ntp.org") != 2 {
		t.Errorf("apex size = %d", d.ZoneSize("pool.ntp.org"))
	}
	if d.ZoneSize("europe.pool.ntp.org") != 2 {
		t.Errorf("europe size = %d", d.ZoneSize("europe.pool.ntp.org"))
	}
	if d.ZoneSize("uk.pool.ntp.org") != 1 {
		t.Errorf("uk size = %d", d.ZoneSize("uk.pool.ntp.org"))
	}
	if d.ZoneSize("fr.pool.ntp.org") != 0 {
		t.Error("phantom zone")
	}
	if len(d.Zones()) != 4 {
		t.Errorf("zones = %v", d.Zones())
	}
}

func TestDirectoryCaseInsensitive(t *testing.T) {
	d := NewDirectory()
	d.AddServer(poolAddr(1), "UK")
	if _, ok := d.Resolve("uk.POOL.ntp.ORG"); !ok {
		t.Error("case-sensitive lookup")
	}
}

func TestResolveUnknownZone(t *testing.T) {
	d := NewDirectory()
	if _, ok := d.Resolve("xx.pool.ntp.org"); ok {
		t.Error("unknown zone resolved")
	}
}

func TestResolveSmallZone(t *testing.T) {
	d := NewDirectory()
	d.AddServer(poolAddr(1), "sg")
	addrs, ok := d.Resolve("sg.pool.ntp.org")
	if !ok || len(addrs) != 1 {
		t.Errorf("small zone answers = %v,%v", addrs, ok)
	}
}

// simDirectory wires a client and directory host through one router.
func simDirectory(t *testing.T, servers int, zones map[int]string) (*netsim.Sim, *netsim.Host, packet.Addr, *Directory) {
	t.Helper()
	sim := netsim.NewSim(11)
	n := netsim.NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 64500)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	dnsHost, _ := n.AddHost("dns", packet.AddrFrom4(10, 0, 0, 53))
	n.Attach(client, r, time.Millisecond, 0)
	n.Attach(dnsHost, r, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	d := NewDirectory()
	for i := 0; i < servers; i++ {
		d.AddServer(poolAddr(i), zones[i])
	}
	if err := d.AttachSim(dnsHost); err != nil {
		t.Fatal(err)
	}
	return sim, client, dnsHost.Addr(), d
}

func TestDiscoverEnumeratesPool(t *testing.T) {
	zones := map[int]string{}
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			zones[i] = "uk"
		} else {
			zones[i] = "de"
		}
	}
	sim, client, resolver, dir := simDirectory(t, 40, zones)

	var got DiscoverResult
	Discover(client, DiscoverConfig{
		Resolver:      resolver,
		Zones:         []string{"uk", "de"},
		Rounds:        8,
		RoundInterval: time.Minute,
	}, func(r DiscoverResult) { got = r })
	sim.Run()

	if len(got.Servers) != 40 {
		t.Fatalf("discovered %d of 40 servers", len(got.Servers))
	}
	for i := 1; i < len(got.Servers); i++ {
		if !got.Servers[i-1].Less(got.Servers[i]) {
			t.Fatal("servers not sorted/deduped")
		}
	}
	if got.QueriesSent != 8*3 {
		t.Errorf("queries sent = %d, want 24", got.QueriesSent)
	}
	if got.ResponsesReceived != got.QueriesSent {
		t.Errorf("responses = %d of %d", got.ResponsesReceived, got.QueriesSent)
	}
	if dir.Queries != uint64(got.QueriesSent) {
		t.Errorf("directory saw %d queries", dir.Queries)
	}
}

func TestDiscoverToleratesTimeouts(t *testing.T) {
	sim, client, resolver, _ := simDirectory(t, 8, nil)
	client.Uplink().SetLossBoth(0.4)

	done := false
	Discover(client, DiscoverConfig{
		Resolver:      resolver,
		Rounds:        6,
		RoundInterval: 30 * time.Second,
	}, func(r DiscoverResult) {
		done = true
		if len(r.Servers) == 0 {
			t.Error("nothing discovered despite repeated rounds")
		}
		if r.ResponsesReceived >= r.QueriesSent {
			t.Error("expected some query losses at 40% link loss")
		}
	})
	sim.Run()
	if !done {
		t.Fatal("discovery never completed")
	}
}

func TestDirectoryIgnoresGarbage(t *testing.T) {
	sim, client, resolver, dir := simDirectory(t, 2, nil)
	// Raw garbage to port 53 must not crash or count as a query.
	client.SendUDP(resolver, 40000, DNSPort, 64, 0, []byte{1, 2, 3})
	sim.Run()
	if dir.Queries != 0 {
		t.Errorf("garbage counted as query: %d", dir.Queries)
	}
}
