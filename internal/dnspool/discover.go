package dnspool

import (
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// DiscoverConfig controls a pool-enumeration run, mirroring the paper's
// discovery script: "a DNS query for pool.ntp.org and each of its
// country- and region-specific sub-domains in turn, with a one second gap
// between each query... run at approximately ten minute intervals".
type DiscoverConfig struct {
	// Resolver is the address of the pool DNS service.
	Resolver packet.Addr
	// Zones are the sub-zone labels to poll in addition to the apex
	// (e.g. "uk", "europe", "us").
	Zones []string
	// Rounds is how many polling passes to make (default 40).
	Rounds int
	// QueryGap is the pause between consecutive zone queries (default 1s).
	QueryGap time.Duration
	// RoundInterval is the pause between passes (default 10min).
	RoundInterval time.Duration
	// QueryTimeout bounds each query (default 2s); timed-out queries are
	// skipped, not retried — the next round repeats the zone anyway.
	QueryTimeout time.Duration
}

func (c DiscoverConfig) withDefaults() DiscoverConfig {
	if c.Rounds == 0 {
		c.Rounds = 40
	}
	if c.QueryGap == 0 {
		c.QueryGap = time.Second
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 10 * time.Minute
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 2 * time.Second
	}
	return c
}

// DiscoverResult is the enumerated server set.
type DiscoverResult struct {
	// Servers is the deduplicated, address-sorted membership.
	Servers []packet.Addr
	// QueriesSent and ResponsesReceived describe the run.
	QueriesSent       int
	ResponsesReceived int
}

// Discover runs the polling loop from a simulated host against the pool
// directory, calling done with the deduplicated server list. Drive the
// simulation to completion for the result.
func Discover(h *netsim.Host, cfg DiscoverConfig, done func(DiscoverResult)) {
	cfg = cfg.withDefaults()
	sim := h.Sim()

	// Query plan: apex first, then each sub-zone, repeated every round.
	names := append([]string{BaseZone}, make([]string, 0, len(cfg.Zones))...)
	for _, z := range cfg.Zones {
		names = append(names, z+"."+BaseZone)
	}

	seen := make(map[packet.Addr]bool)
	var res DiscoverResult
	var queryID uint16

	var step func(round, zoneIdx int)
	runQuery := func(name string, next func()) {
		queryID++
		id := queryID
		var port uint16
		var timer netsim.Timer
		finished := false
		finish := func() {
			if finished {
				return
			}
			finished = true
			timer.Stop()
			h.UnbindUDP(port)
			next()
		}
		port, err := h.BindUDP(0, func(host *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
			if finished || ip.Src != cfg.Resolver {
				return
			}
			msg, perr := Parse(payload)
			if perr != nil || !msg.IsResponse() || msg.ID != id {
				return
			}
			res.ResponsesReceived++
			for _, rr := range msg.Answers {
				if rr.Type == TypeA && !seen[rr.Addr] {
					seen[rr.Addr] = true
				}
			}
			finish()
		})
		if err != nil {
			next()
			return
		}
		q := NewQuery(id, name)
		wire, err := q.Marshal()
		if err != nil {
			finish()
			return
		}
		res.QueriesSent++
		// A failed send is recovered by the query timeout path.
		_ = h.SendUDP(cfg.Resolver, port, DNSPort, 64, 0 /* not-ECT */, wire)
		timer = sim.After(cfg.QueryTimeout, finish)
	}

	step = func(round, zoneIdx int) {
		if round == cfg.Rounds {
			res.Servers = make([]packet.Addr, 0, len(seen))
			for a := range seen {
				res.Servers = append(res.Servers, a)
			}
			sort.Slice(res.Servers, func(i, j int) bool {
				return res.Servers[i].Less(res.Servers[j])
			})
			done(res)
			return
		}
		if zoneIdx == len(names) {
			sim.After(cfg.RoundInterval, func() { step(round+1, 0) })
			return
		}
		runQuery(names[zoneIdx], func() {
			sim.After(cfg.QueryGap, func() { step(round, zoneIdx+1) })
		})
	}
	step(0, 0)
}
