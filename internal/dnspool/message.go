// Package dnspool implements the server-discovery stage of the study: a
// DNS wire-format codec, a pool.ntp.org-style round-robin directory
// server, and the discovery client that repeatedly queries the pool's
// global and country zones to enumerate servers.
//
// The real NTP pool balances clients by answering each query for
// pool.ntp.org (or a country sub-zone such as uk.pool.ntp.org) with a
// small rotating set of A records and short TTLs. Discovering "all"
// servers therefore requires polling the zones repeatedly over time —
// the paper ran its discovery script at ten-minute intervals for several
// weeks. The simulated directory reproduces the rotation so the client
// has the same job to do.
package dnspool

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/packet"
)

// DNS constants (RFC 1035) for the subset in use.
const (
	TypeA   uint16 = 1
	ClassIN uint16 = 1

	// Flag bits within the header flags word.
	FlagQR uint16 = 1 << 15 // response
	FlagAA uint16 = 1 << 10 // authoritative
	FlagRD uint16 = 1 << 8  // recursion desired
	FlagRA uint16 = 1 << 7  // recursion available

	// RCodes.
	RCodeNoError  uint16 = 0
	RCodeNXDomain uint16 = 3
)

// Errors returned by the codec.
var (
	ErrTruncated = errors.New("dnspool: truncated message")
	ErrBadName   = errors.New("dnspool: malformed name")
)

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// ResourceRecord is an answer-section record; only A records carry data
// the pool needs.
type ResourceRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	// Addr is the A record address (Type == TypeA).
	Addr packet.Addr
}

// Message is a DNS message restricted to one question plus answers.
type Message struct {
	ID        uint16
	Flags     uint16
	RCode     uint16
	Questions []Question
	Answers   []ResourceRecord
}

// IsResponse reports whether the QR bit is set.
func (m *Message) IsResponse() bool { return m.Flags&FlagQR != 0 }

// appendName encodes a domain name as length-prefixed labels. Compression
// is not emitted (always legal); the parser below accepts it anyway.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// parseName decodes a possibly compressed domain name starting at off,
// returning the name and the offset just past it in the original stream.
func parseName(data []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, fmt.Errorf("%w: compression loop", ErrBadName)
		}
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		l := int(data[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case l&0xC0 == 0xC0: // compression pointer
			if off+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			ptr := (l&0x3F)<<8 | int(data[off+1])
			if !jumped {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrBadName)
			}
			off = ptr
			jumped = true
		case l&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrBadName)
		default:
			if off+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(data[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	b := make([]byte, 12)
	put16 := func(off int, v uint16) { b[off], b[off+1] = byte(v>>8), byte(v) }
	put16(0, m.ID)
	put16(2, m.Flags|m.RCode&0xF)
	put16(4, uint16(len(m.Questions)))
	put16(6, uint16(len(m.Answers)))
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name); err != nil {
			return nil, err
		}
		b = append(b, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	for _, rr := range m.Answers {
		if b, err = appendName(b, rr.Name); err != nil {
			return nil, err
		}
		b = append(b,
			byte(rr.Type>>8), byte(rr.Type),
			byte(rr.Class>>8), byte(rr.Class),
			byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
		if rr.Type == TypeA {
			b = append(b, 0, 4)
			b = append(b, rr.Addr[:]...)
		} else {
			b = append(b, 0, 0)
		}
	}
	return b, nil
}

// Parse decodes a DNS message (question + answer sections; authority and
// additional sections are not used by the pool protocol and are ignored
// if the counts are zero, rejected otherwise).
func Parse(data []byte) (Message, error) {
	var m Message
	if len(data) < 12 {
		return m, ErrTruncated
	}
	get16 := func(off int) uint16 { return uint16(data[off])<<8 | uint16(data[off+1]) }
	m.ID = get16(0)
	flags := get16(2)
	m.Flags = flags &^ 0xF
	m.RCode = flags & 0xF
	qd, an, ns, ar := get16(4), get16(6), get16(8), get16(10)
	if ns != 0 || ar != 0 {
		return m, fmt.Errorf("dnspool: authority/additional sections unsupported (%d/%d)", ns, ar)
	}
	off := 12
	for i := 0; i < int(qd); i++ {
		name, next, err := parseName(data, off)
		if err != nil {
			return m, err
		}
		off = next
		if off+4 > len(data) {
			return m, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  get16(off),
			Class: get16(off + 2),
		})
		off += 4
	}
	for i := 0; i < int(an); i++ {
		name, next, err := parseName(data, off)
		if err != nil {
			return m, err
		}
		off = next
		if off+10 > len(data) {
			return m, ErrTruncated
		}
		rr := ResourceRecord{
			Name:  name,
			Type:  get16(off),
			Class: get16(off + 2),
			TTL: uint32(data[off+4])<<24 | uint32(data[off+5])<<16 |
				uint32(data[off+6])<<8 | uint32(data[off+7]),
		}
		rdlen := int(get16(off + 8))
		off += 10
		if off+rdlen > len(data) {
			return m, ErrTruncated
		}
		if rr.Type == TypeA {
			if rdlen != 4 {
				return m, fmt.Errorf("dnspool: A record with %d-byte rdata", rdlen)
			}
			copy(rr.Addr[:], data[off:off+4])
		}
		off += rdlen
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}

// NewQuery builds an A query for name.
func NewQuery(id uint16, name string) Message {
	return Message{
		ID:        id,
		Flags:     FlagRD,
		Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
	}
}
