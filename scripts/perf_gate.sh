#!/usr/bin/env bash
# perf_gate.sh — benchmark regression gate: base ref vs working tree.
#
# Runs the hot-path benchmark set twice — once in a git worktree of the
# base ref, once in the current tree — renders a benchstat comparison,
# and fails on any of:
#
#   * >PERF_GATE_MAX_REGRESSION_PCT (default 10) slowdown in campaign
#     wall-clock (BenchmarkCampaignWorkers);
#   * >PERF_GATE_MAX_REGRESSION_PCT slowdown in the per-shard world
#     setup cost (BenchmarkShardBuild) — shared frozen blueprints
#     collapsed it from a full generation + all-pairs routing to a
#     lightweight instantiation, and this gate keeps it collapsed;
#   * any allocs/op > 0 on the pooled packet-path, scheduler and
#     telemetry benchmarks (BenchmarkCEMarkThroughput,
#     BenchmarkBuildUDPBuf, BenchmarkSimSchedule,
#     BenchmarkSimScheduleSparse, BenchmarkTelemetryHotPath — the
#     flight recorder's write path must stay allocation-free);
#   * campaign-level allocations above PERF_GATE_MAX_CAMPAIGN_ALLOCS
#     (default 300000) per BenchmarkCampaignWorkers run — the pooled
#     probe/trace state machines hold a small congested campaign around
#     ~250k allocs, and this gate keeps closure-per-probe regressions
#     out;
#   * >PERF_GATE_MAX_TELEMETRY_PCT (default 2) instrumentation
#     overhead, from BenchmarkCampaignTelemetry's `overhead-%` metric:
#     the benchmark runs plain/instrumented campaign pairs back to back
#     in alternating order and reports the paired difference, so
#     in-process drift (GC pacing) cannot masquerade as telemetry cost
#     — the budget that keeps the flight recorder always-on in the
#     control plane.
#
# Environment knobs:
#   PERF_GATE_BASE                base ref to compare against (default origin/main)
#   PERF_GATE_COUNT               benchmark repetitions (default 5)
#   PERF_GATE_MAX_REGRESSION_PCT  wall-clock slowdown tolerance (default 10)
#   PERF_GATE_MAX_CAMPAIGN_ALLOCS campaign allocs/op ceiling (default 300000)
#   PERF_GATE_MAX_TELEMETRY_PCT   instrumented-campaign overhead tolerance (default 2)
set -euo pipefail

BASE_REF="${PERF_GATE_BASE:-origin/main}"
COUNT="${PERF_GATE_COUNT:-5}"
MAX_PCT="${PERF_GATE_MAX_REGRESSION_PCT:-10}"
MAX_CAMPAIGN_ALLOCS="${PERF_GATE_MAX_CAMPAIGN_ALLOCS:-300000}"
MAX_TELEMETRY_PCT="${PERF_GATE_MAX_TELEMETRY_PCT:-2}"
# Campaign runs few iterations (each is a whole campaign); the packet
# and scheduler hot-path benches run many so pool warmup amortises to a
# true 0 allocs/op steady state.
CAMPAIGN_FILTER='BenchmarkCampaignWorkers/workers=4$|BenchmarkShardBuild$|BenchmarkCampaignTelemetry$'
HOTPATH_FILTER='BenchmarkCEMarkThroughput|BenchmarkBuildUDPBuf$|BenchmarkSimSchedule|BenchmarkSimScheduleSparse|BenchmarkTelemetryHotPath$'

root="$(git rev-parse --show-toplevel)"
cd "$root"
work="$(mktemp -d)"
cleanup() {
    git worktree remove --force "$work/base" >/dev/null 2>&1 || true
    rm -rf "$work"
}
trap cleanup EXIT

run_bench() (
    cd "$1"
    # Small world, few traces: the gate measures per-packet cost, not scale.
    REPRO_SCALE=small REPRO_TRACES=2 go test -run='^$' -bench="$CAMPAIGN_FILTER" \
        -benchmem -benchtime=2x -count="$COUNT" ./internal/campaign/
    go test -run='^$' -bench="$HOTPATH_FILTER" \
        -benchmem -benchtime=20000x -count="$COUNT" ./internal/aqm/ ./internal/packet/ ./internal/netsim/ ./internal/telemetry/
)

echo "perf-gate: benchmarking working tree (count=$COUNT)..."
run_bench "$root" | tee "$work/head.txt"

echo "perf-gate: benchmarking base ($BASE_REF)..."
git worktree add --quiet --detach "$work/base" "$BASE_REF"
run_bench "$work/base" > "$work/base.txt" || {
    echo "perf-gate: base benchmarks failed (new benchmarks on an old base are fine); continuing with what ran"
}

if command -v benchstat >/dev/null 2>&1; then
    echo "perf-gate: benchstat comparison (base vs head):"
    benchstat "$work/base.txt" "$work/head.txt" || true
else
    echo "perf-gate: benchstat not installed — skipping the pretty report" \
         "(go install golang.org/x/perf/cmd/benchstat@latest)"
fi

fail=0

# Gate 1: zero allocs/op on the pooled packet-path, scheduler and
# telemetry-write-path benchmarks.
bad_allocs="$(awk '/^Benchmark(CEMarkThroughput|BuildUDPBuf|SimSchedule|TelemetryHotPath)/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op" && $i+0 > 0) print $1, $i, "allocs/op"
}' "$work/head.txt" | sort -u)"
if [ -n "$bad_allocs" ]; then
    echo "perf-gate: FAIL — pooled packet-path, scheduler and telemetry benchmarks must report 0 allocs/op:"
    echo "$bad_allocs"
    fail=1
fi

# Gate 2: campaign-level allocations. The pooled probe and trace state
# machines keep a small campaign around ~250k allocs/op; the ceiling
# catches a reintroduced closure-per-probe (or per-phantom) pattern
# long before it shows up as wall-clock.
bad_campaign_allocs="$(awk -v max="$MAX_CAMPAIGN_ALLOCS" '/^BenchmarkCampaignWorkers/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op" && $i+0 > max) print $1, $i, "allocs/op >", max
}' "$work/head.txt" | sort -u)"
if [ -n "$bad_campaign_allocs" ]; then
    echo "perf-gate: FAIL — campaign allocations exceed PERF_GATE_MAX_CAMPAIGN_ALLOCS=$MAX_CAMPAIGN_ALLOCS:"
    echo "$bad_campaign_allocs"
    fail=1
fi

# Gate 3: instrumentation overhead. BenchmarkCampaignTelemetry reports
# the paired plain-vs-instrumented difference itself (order-alternated
# within one process), so the gate takes the median of its `overhead-%`
# metric across the count repetitions — median, not mean, so one noisy
# repetition on a small machine cannot tip the verdict.
telemetry_overhead="$(awk -v maxpct="$MAX_TELEMETRY_PCT" '
    /^BenchmarkCampaignTelemetry/ {
        for (i = 2; i < NF; i++) if ($(i+1) == "overhead-%") v[++cnt] = $i
    }
    END {
        if (cnt == 0) { print "BenchmarkCampaignTelemetry overhead-% rows missing"; exit 1 }
        for (a = 1; a <= cnt; a++)
            for (b = a + 1; b <= cnt; b++)
                if (v[b] + 0 < v[a] + 0) { t = v[a]; v[a] = v[b]; v[b] = t }
        med = (cnt % 2) ? v[(cnt + 1) / 2] : (v[cnt / 2] + v[cnt / 2 + 1]) / 2
        printf "BenchmarkCampaignTelemetry paired overhead median=%+.1f%% (%d runs)\n", med, cnt
        if (med > maxpct) exit 1
    }
' "$work/head.txt")" || {
    echo "perf-gate: FAIL — telemetry overhead exceeds PERF_GATE_MAX_TELEMETRY_PCT=${MAX_TELEMETRY_PCT}%:"
    echo "$telemetry_overhead"
    fail=1
}
[ $fail -eq 1 ] || echo "$telemetry_overhead"

# Gate 4: wall-clock regression vs base, on mean ns/op, for the campaign
# and the per-shard world setup. A benchmark absent on base (or whose
# base meaning differs — BenchmarkShardBuild predates shared worlds)
# can only pass or improve; the comparison keeps it from regressing
# again afterwards.
regressions="$(awk -v maxpct="$MAX_PCT" '
    function basename(n) { sub(/-[0-9]+$/, "", n); return n }
    FNR == 1 { file++ }
    /^Benchmark(CampaignWorkers|ShardBuild)/ {
        for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") {
            n = basename($1)
            if (file == 1) { hsum[n] += $i; hcnt[n]++ } else { bsum[n] += $i; bcnt[n]++ }
        }
    }
    END {
        for (n in hsum) {
            if (!(n in bsum)) continue  # benchmark absent on base: nothing to gate
            head = hsum[n] / hcnt[n]; base = bsum[n] / bcnt[n]
            pct = (head - base) * 100 / base
            printf "%s base=%.0fns/op head=%.0fns/op delta=%+.1f%%\n", n, base, head, pct
            if (pct > maxpct) bad = 1
        }
        exit bad
    }
' "$work/head.txt" "$work/base.txt")" || {
    echo "perf-gate: FAIL — wall-clock regressed more than ${MAX_PCT}%:"
    echo "$regressions"
    fail=1
}
[ $fail -eq 1 ] || echo "$regressions"

if [ $fail -ne 0 ]; then
    exit 1
fi
echo "perf-gate: OK"
