#!/usr/bin/env bash
# Service smoke test: the control plane's correctness contract, end to
# end over real HTTP against a real cmd/reprod process.
#
#   1. A dataset served by reprod must hash to cmd/determinism's SHA-256
#      for the same spec — the engine's determinism invariant carried
#      over HTTP — and to the hash reprod's own run report claims.
#   2. Resubmitting the spec must be a cache hit: byte-identical
#      dataset, and the job-manager counters prove no second simulation
#      ran (runs_started stays 1, cache_hits becomes 1).
#   3. The flight recorder works end to end: /v1/metrics serves the key
#      Prometheus series with values matching the run that just
#      happened, and /v1/jobs/{id}/events replays the job's lifecycle.
#
# CI runs this as the service-smoke job; locally: make smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:8071}"
BASE="http://$ADDR"
SPEC='{"spec":1,"scale":"small","traces":2,"seed":2015,"stride":0}'

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "service-smoke: $*"; }
jsonval() { python3 -c 'import json,sys; print(json.load(sys.stdin)['"$1"'])'; }

go build -o "$WORK/reprod" ./cmd/reprod
go build -o "$WORK/determinism" ./cmd/determinism

say "reference hash from cmd/determinism (direct engine run)"
"$WORK/determinism" \
    -scenario uncongested -sched wheel -xtraffic lazy -workers 1 -slices 1 \
    > "$WORK/determinism.out"
REF_HASH="$(head -n1 "$WORK/determinism.out" | cut -d' ' -f1)"
say "reference $REF_HASH"

"$WORK/reprod" serve -addr "$ADDR" -data "$WORK/data" -jobs 1 &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then say "FAIL: server did not come up on $ADDR"; exit 1; fi
    sleep 0.2
done

say "cold submission"
SUBMIT="$(curl -fsS -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/campaigns")"
JOB="$(echo "$SUBMIT" | jsonval '"id"')"

for i in $(seq 1 300); do
    STATE="$(curl -fsS "$BASE/v1/jobs/$JOB" | jsonval '"state"')"
    case "$STATE" in
        done) break ;;
        failed) say "FAIL: job failed"; curl -fsS "$BASE/v1/jobs/$JOB"; exit 1 ;;
    esac
    if [ "$i" = 300 ]; then say "FAIL: job $JOB did not finish"; exit 1; fi
    sleep 0.2
done
say "job $JOB done"

# Per-shard completion is exposed and fully done.
SHARDS="$(curl -fsS "$BASE/v1/jobs/$JOB/shards" \
    | python3 -c 'import json,sys; s=json.load(sys.stdin)["shards"]; print(len(s), sum(x["state"]=="done" for x in s))')"
say "shards (total done): $SHARDS"
[ "$(echo "$SHARDS" | awk '{print ($1>0 && $1==$2)}')" = 1 ] \
    || { say "FAIL: shards not all done: $SHARDS"; exit 1; }

curl -fsS "$BASE/v1/jobs/$JOB/dataset" -o "$WORK/dataset1.jsonl"
GOT_HASH="$(sha256sum "$WORK/dataset1.jsonl" | cut -d' ' -f1)"
if [ "$GOT_HASH" != "$REF_HASH" ]; then
    say "FAIL: served dataset hash $GOT_HASH != determinism hash $REF_HASH"
    exit 1
fi
say "served dataset matches cmd/determinism: $GOT_HASH"

META_HASH="$(curl -fsS "$BASE/v1/jobs/$JOB/report" | jsonval '"dataset_sha256"')"
[ "$META_HASH" = "$REF_HASH" ] \
    || { say "FAIL: report hash $META_HASH != $REF_HASH"; exit 1; }

say "resubmission (must be served from cache)"
SUBMIT2="$(curl -fsS -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/campaigns")"
CACHED="$(echo "$SUBMIT2" | python3 -c 'import json,sys; j=json.load(sys.stdin); print(j["cached"], j["state"])')"
[ "$CACHED" = "True done" ] \
    || { say "FAIL: resubmission not a cache hit: $SUBMIT2"; exit 1; }

JOB2="$(echo "$SUBMIT2" | jsonval '"id"')"
curl -fsS "$BASE/v1/jobs/$JOB2/dataset" -o "$WORK/dataset2.jsonl"
cmp -s "$WORK/dataset1.jsonl" "$WORK/dataset2.jsonl" \
    || { say "FAIL: cache hit served different bytes"; exit 1; }

STATS="$(curl -fsS "$BASE/v1/stats")"
echo "$STATS" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["runs_started"] == 1, f"cache did not prevent a re-run: {s}"
assert s["cache_hits"] == 1, f"resubmission was not a store hit: {s}"
assert s["submitted"] == 2, s
' || { say "FAIL: job-manager counters wrong: $STATS"; exit 1; }

say "metrics scrape"
curl -fsS "$BASE/v1/metrics" -o "$WORK/metrics.txt"
python3 - "$WORK/metrics.txt" <<'EOF'
import sys

series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    series[name] = float(value)

def get(name):
    assert name in series, f"missing series {name}"
    return series[name]

# One run simulated, one store hit, nothing in flight.
assert get('repro_jobs_total{event="started"}') == 1, series
assert get('repro_jobs_total{event="done"}') == 1, series
assert get('repro_store_requests_total{result="hit"}') == 1, series
assert get("repro_jobs_running") == 0, series
assert get("repro_campaign_shards_running") == 0, series
# The engine's counters flushed: every shard completed on the wheel
# scheduler, traces merged, durations observed.
done = get('repro_campaign_shards_completed_total{result="ok"}')
assert done > 0, series
assert get('repro_sim_events_total{sched="wheel"}') > 0, series
assert get("repro_campaign_traces_completed_total") > 0, series
assert get("repro_campaign_shard_duration_seconds_count") == done, series
# HTTP middleware saw the submissions.
assert get('repro_http_requests_total{route="POST /v1/campaigns",code_class="2xx"}') == 2, series
print(f"service-smoke: metrics OK ({len(series)} series)")
EOF

say "job event journal"
curl -fsS "$BASE/v1/jobs/$JOB/events" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
kinds = [e["kind"] for e in doc["events"]]
assert kinds[0] == "queued" and kinds[1] == "running" and kinds[-1] == "done", kinds
starts, dones = kinds.count("shard-start"), kinds.count("shard-done")
assert starts > 0 and starts == dones, kinds
assert all(e["job"] == doc["id"] for e in doc["events"]), doc
print(f"service-smoke: journal OK ({len(kinds)} events, {starts} shards)")
' || { say "FAIL: job events journal wrong"; exit 1; }

say "typed-client companion (reprod run via internal/apiclient)"
# The same spec through the typed client must be another pure cache
# hit serving the same bytes, and the decoded report must agree.
"$WORK/reprod" run -coordinator "$BASE" -spec "$SPEC" -out "$WORK/dataset3.jsonl" \
    > "$WORK/report3.json" 2>/dev/null
cmp -s "$WORK/dataset1.jsonl" "$WORK/dataset3.jsonl" \
    || { say "FAIL: typed client fetched different bytes"; exit 1; }
CLIENT_HASH="$(jsonval '"dataset_sha256"' < "$WORK/report3.json")"
[ "$CLIENT_HASH" = "$REF_HASH" ] \
    || { say "FAIL: typed-client report hash $CLIENT_HASH != $REF_HASH"; exit 1; }
curl -fsS "$BASE/v1/stats" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["runs_started"] == 1, f"typed-client resubmit re-ran the campaign: {s}"
assert s["cache_hits"] == 2, s
' || { say "FAIL: typed-client resubmit was not a cache hit"; exit 1; }

say "OK: dataset over HTTP == cmd/determinism ($REF_HASH); cache hit did not re-simulate; flight recorder live"
