#!/usr/bin/env bash
# Chaos smoke test: the self-healing path, end to end with real
# processes and a deterministically hostile network.
#
#   1. A distributed campaign is worked by one WEDGED worker — it
#      claims a two-shard batch and heartbeats forever without
#      executing — plus two healthy reprod worker processes that reach
#      the coordinator only through the reprod chaosproxy (dropped,
#      delayed, and duplicated requests on fixed counters).
#   2. The job must still complete: straggler speculation re-exposes
#      the wedged shards as speculative twins, the healthy workers win
#      the race, and the dataset's SHA-256 must equal cmd/determinism's
#      hash for the same spec — chaos costs nothing in bytes.
#   3. The scoreboard must bench the straggler: two speculation-loss
#      strikes (quarantine-threshold 2) put the wedged worker in
#      quarantine, visible on GET /v1/workers, and the speculation
#      metrics must record the issued/won race.
#
# CI runs this as the chaos-smoke job; locally: make chaos-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:8074}"
PROXY_ADDR="${SMOKE_PROXY_ADDR:-127.0.0.1:8075}"
BASE="http://$ADDR"
PROXY_BASE="http://$PROXY_ADDR"
SPEC='{"spec":1,"scale":"small","traces":2,"seed":2015,"stride":0,"execution":"distributed"}'
LEASE_TTL="10s"

WORK="$(mktemp -d)"
SERVER_PID=""
PROXY_PID=""
WEDGE_PID=""
RUN_PID=""
W_PIDS=""
cleanup() {
    [ -n "$RUN_PID" ] && kill "$RUN_PID" 2>/dev/null || true
    [ -n "$WEDGE_PID" ] && kill "$WEDGE_PID" 2>/dev/null || true
    for p in $W_PIDS; do kill "$p" 2>/dev/null || true; done
    [ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null || true
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "chaos-smoke: $*"; }

go build -o "$WORK/reprod" ./cmd/reprod
go build -o "$WORK/determinism" ./cmd/determinism

say "reference hash from cmd/determinism (direct engine run)"
"$WORK/determinism" \
    -scenario uncongested -sched wheel -xtraffic lazy -workers 1 -slices 1 \
    > "$WORK/determinism.out"
REF_HASH="$(head -n1 "$WORK/determinism.out" | cut -d' ' -f1)"
say "reference $REF_HASH"

say "coordinator: lease-ttl $LEASE_TTL, speculate-after 1.5, quarantine-threshold 2"
"$WORK/reprod" serve -addr "$ADDR" -data "$WORK/data" -jobs 1 \
    -lease-ttl "$LEASE_TTL" -speculate-after 1.5 -quarantine-threshold 2 &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then say "FAIL: server did not come up on $ADDR"; exit 1; fi
    sleep 0.2
done

say "chaos proxy: drop every 7th, delay every 5th by 100ms, dup every 9th"
"$WORK/reprod" chaosproxy -listen "$PROXY_ADDR" -target "$BASE" \
    -drop-every 7 -delay-every 5 -delay 100ms -dup-every 9 2> "$WORK/proxy.log" &
PROXY_PID=$!
sleep 0.3

say "submitting distributed campaign (awaits workers)"
"$WORK/reprod" run -coordinator "$BASE" -spec "$SPEC" -out "$WORK/dataset.jsonl" \
    > "$WORK/report.json" 2> "$WORK/run.log" &
RUN_PID=$!

JOB=""
for i in $(seq 1 50); do
    JOB="$(curl -fsS "$BASE/v1/jobs?state=running" 2>/dev/null \
        | python3 -c 'import json,sys; jobs=json.load(sys.stdin)["jobs"]; print(jobs[0]["id"] if jobs else "")')"
    [ -n "$JOB" ] && break
    sleep 0.2
done
[ -n "$JOB" ] || { say "FAIL: no running job appeared"; exit 1; }
say "job $JOB"

say "wedged worker: claims two shards, heartbeats, never executes"
"$WORK/reprod" worker -coordinator "$BASE" -id wedged -wedge -batch 2 \
    > "$WORK/wedged.stats" 2>/dev/null &
WEDGE_PID=$!
for i in $(seq 1 100); do
    HELD="$(curl -fsS "$BASE/v1/jobs/$JOB/shards" \
        | python3 -c 'import json,sys; print(sum(1 for s in json.load(sys.stdin)["shards"] if s.get("worker")=="wedged" and s.get("state")=="leased"))')"
    [ "$HELD" = 2 ] && break
    if [ "$i" = 100 ]; then say "FAIL: wedged worker never claimed its batch"; exit 1; fi
    sleep 0.1
done
say "wedged worker holds $HELD shards"

say "healthy workers w1, w2 behind the chaos proxy"
"$WORK/reprod" worker -coordinator "$PROXY_BASE" -id w1 -batch 4 \
    > "$WORK/w1.stats" 2>/dev/null &
W_PIDS="$!"
"$WORK/reprod" worker -coordinator "$PROXY_BASE" -id w2 -batch 4 \
    > "$WORK/w2.stats" 2>/dev/null &
W_PIDS="$W_PIDS $!"

if ! wait "$RUN_PID"; then
    say "FAIL: reprod run did not succeed"
    cat "$WORK/run.log"
    exit 1
fi
RUN_PID=""

GOT_HASH="$(sha256sum "$WORK/dataset.jsonl" | cut -d' ' -f1)"
if [ "$GOT_HASH" != "$REF_HASH" ]; then
    say "FAIL: chaos dataset hash $GOT_HASH != determinism hash $REF_HASH"
    exit 1
fi
say "dataset under chaos + wedged worker matches cmd/determinism: $GOT_HASH"

say "speculation and quarantine telemetry"
curl -fsS "$BASE/v1/metrics" -o "$WORK/metrics.txt"
curl -fsS "$BASE/v1/workers" -o "$WORK/workers.json"
python3 - "$WORK/metrics.txt" "$WORK/workers.json" <<'EOF'
import json, sys

series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    series[name] = float(value)

def get(name):
    assert name in series, f"missing series {name}"
    return series[name]

# The wedged shards were re-exposed and the healthy twins won.
assert get('repro_speculation_total{event="issued"}') >= 2, series
assert get('repro_speculation_total{event="won"}') >= 2, series
# The straggler took speculation-loss strikes and was benched.
assert get('repro_worker_health_events_total{event="quarantine"}') >= 1, series

workers = {w["id"]: w for w in json.load(open(sys.argv[2]))["workers"]}
wedged = workers.get("wedged")
assert wedged is not None, workers
assert wedged["state"] == "quarantined", wedged
assert wedged["speculation_losses"] >= 2, wedged
print("chaos-smoke: speculation + quarantine telemetry OK")
EOF

say "OK: wedged worker beaten by speculation and quarantined; chaos-proxied dataset == cmd/determinism ($REF_HASH)"
