#!/usr/bin/env bash
# Crash-smoke test: the coordinator's crash-recovery contract, end to
# end with real processes and a real kill.
#
#   1. A coordinator armed with REPRO_FAILPOINT=server.accept-result:
#      crash-after-journal dies with exit 137 — os.Exit, no cleanup, no
#      flushes — at the exact instant the first shard result is
#      journaled but not yet acknowledged. Two workers are mid-campaign
#      when it happens.
#   2. A fresh coordinator on the same -data directory replays the
#      journal: the journaled result is owned (its worker's retry acks
#      as "duplicate", never a double merge), pending shards are
#      re-exposed, and the workers — riding transparent retry/backoff —
#      drain the job without operator help.
#   3. The merged dataset's SHA-256 must equal cmd/determinism's hash
#      for the same spec: the crash is invisible in the output bytes.
#   4. The telemetry must tell the story: recovery outcome "resumed"
#      with restored shards on the restarted process, worker stats with
#      non-zero retries, runs_started exactly 1 (the resumed job — no
#      shard executes twice beyond what lease re-issue forces), and the
#      journal directory empty once the run files.
#
# CI runs this as the crash-smoke job; locally: make crash-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:8073}"
BASE="http://$ADDR"
SPEC='{"spec":1,"scale":"small","traces":2,"seed":2015,"stride":0,"execution":"distributed"}'
# The TTL must outlast the coordinator's restart window: a worker whose
# heartbeats fail for a full TTL abandons the shard it is executing.
LEASE_TTL="5s"

WORK="$(mktemp -d)"
SERVER_PID=""
W1_PID=""
W2_PID=""
cleanup() {
    for pid in "$W1_PID" "$W2_PID" "$SERVER_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "crash-smoke: $*"; }

go build -o "$WORK/reprod" ./cmd/reprod
go build -o "$WORK/determinism" ./cmd/determinism

say "reference hash from cmd/determinism (direct engine run)"
"$WORK/determinism" \
    -scenario uncongested -sched wheel -xtraffic lazy -workers 1 -slices 1 \
    > "$WORK/determinism.out"
REF_HASH="$(head -n1 "$WORK/determinism.out" | cut -d' ' -f1)"
say "reference $REF_HASH"

say "starting doomed coordinator (failpoint: crash after first journaled result)"
REPRO_FAILPOINT="server.accept-result:crash-after-journal" \
    "$WORK/reprod" serve -addr "$ADDR" -data "$WORK/data" -jobs 1 -lease-ttl "$LEASE_TTL" \
    2> "$WORK/server1.log" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then say "FAIL: server did not come up on $ADDR"; exit 1; fi
    sleep 0.2
done

say "submitting distributed campaign"
JOB="$(curl -fsS -X POST "$BASE/v1/campaigns" -d "$SPEC" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
say "job $JOB"

say "starting two workers (they must ride through the crash on retries)"
"$WORK/reprod" worker -coordinator "$BASE" -id w1 -batch 2 -exit-when-idle \
    -retry-max 40 -retry-base 100ms -retry-cap 1s \
    > "$WORK/w1.stats" 2> "$WORK/w1.log" &
W1_PID=$!
"$WORK/reprod" worker -coordinator "$BASE" -id w2 -batch 2 -exit-when-idle \
    -retry-max 40 -retry-base 100ms -retry-cap 1s \
    > "$WORK/w2.stats" 2> "$WORK/w2.log" &
W2_PID=$!

say "waiting for the failpoint to kill the coordinator"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=""
if [ "$RC" != 137 ]; then
    say "FAIL: doomed coordinator exited $RC, want 137"
    cat "$WORK/server1.log"
    exit 1
fi
say "coordinator died with 137 mid-upload; journal owns the unacked result"

say "restarting coordinator on the same data directory (no failpoint)"
"$WORK/reprod" serve -addr "$ADDR" -data "$WORK/data" -jobs 1 -lease-ttl "$LEASE_TTL" \
    2> "$WORK/server2.log" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then say "FAIL: restarted server did not come up"; cat "$WORK/server2.log"; exit 1; fi
    sleep 0.2
done
grep -q "replaying coordinator journal" "$WORK/server2.log" \
    || { say "FAIL: restarted server did not replay the journal"; cat "$WORK/server2.log"; exit 1; }

say "waiting for the workers to drain the recovered job"
wait "$W1_PID" || { say "FAIL: worker w1 errored"; cat "$WORK/w1.log"; exit 1; }
W1_PID=""
wait "$W2_PID" || { say "FAIL: worker w2 errored"; cat "$WORK/w2.log"; exit 1; }
W2_PID=""
say "w1 stats: $(cat "$WORK/w1.stats")"
say "w2 stats: $(cat "$WORK/w2.stats")"

job_state() {
    curl -fsS "$BASE/v1/jobs/$JOB" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])'
}
STATE="$(job_state)"
if [ "$STATE" != "done" ]; then
    # Both workers can exit idle while lapsed leases still shadow the
    # last shards; one mop-up pass after expiry settles it.
    say "job is '$STATE' after both workers; mopping up after lease expiry"
    sleep 6
    "$WORK/reprod" worker -coordinator "$BASE" -id w3 -batch 4 -exit-when-idle \
        > "$WORK/w3.stats" 2>/dev/null
    STATE="$(job_state)"
fi
[ "$STATE" = "done" ] || { say "FAIL: job state $STATE after recovery, want done"; exit 1; }

GOT_HASH="$(curl -fsS "$BASE/v1/jobs/$JOB/dataset" | sha256sum | cut -d' ' -f1)"
if [ "$GOT_HASH" != "$REF_HASH" ]; then
    say "FAIL: post-crash dataset hash $GOT_HASH != determinism hash $REF_HASH"
    exit 1
fi
say "dataset across the kill matches cmd/determinism: $GOT_HASH"

say "checking worker retries, recovery telemetry and journal cleanup"
curl -fsS "$BASE/v1/metrics" -o "$WORK/metrics.txt"
curl -fsS "$BASE/v1/stats" -o "$WORK/stats.json"
python3 - "$WORK" <<'EOF'
import glob, json, os, sys

work = sys.argv[1]

# The workers rode through the crash on transparent retries.
retries = 0
for path in (os.path.join(work, "w1.stats"), os.path.join(work, "w2.stats")):
    retries += json.load(open(path)).get("retries", 0)
assert retries > 0, "no worker recorded a retry across the coordinator crash"

series = {}
for line in open(os.path.join(work, "metrics.txt")):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    series[name] = float(value)

def get(name):
    assert name in series, f"missing series {name}"
    return series[name]

# The restarted process recovered the job from the journal: resumed,
# with the pre-crash journaled result restored (never re-executed).
assert get('repro_recovery_jobs_total{outcome="resumed"}') == 1, series
assert get("repro_recovery_shards_total") >= 1, series
# runs_started is 1 in the restarted process: the one resumed job. No
# shard's execution is counted beyond what lease re-issue forces.
stats = json.load(open(os.path.join(work, "stats.json")))
assert stats["runs_started"] == 1, stats
assert stats["recovered"] == 1, stats
# The journal deleted itself once the merged run filed in the store.
leftover = glob.glob(os.path.join(work, "data", "journal", "*.wal"))
assert not leftover, f"journal files survived a completed run: {leftover}"
print("crash-smoke: recovery telemetry OK "
      f"(worker retries={retries}, recovered_shards={int(get('repro_recovery_shards_total'))})")
EOF

say "OK: kill -9-equivalent mid-upload, restart, drain — dataset == cmd/determinism ($REF_HASH)"
