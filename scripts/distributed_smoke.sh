#!/usr/bin/env bash
# Distributed smoke test: the worker protocol's correctness contract,
# end to end over real HTTP with real processes.
#
#   1. A distributed campaign executed by two reprod worker processes —
#      one of which abandons its leases mid-run, simulating a crash —
#      must produce a dataset whose SHA-256 equals cmd/determinism's
#      hash for the same spec. Lease expiry and re-issue must not cost
#      a byte of correctness.
#   2. The lease telemetry must record the crash: expiries and
#      re-issues on repro_lease_events_total, every shard accepted
#      exactly once on repro_shard_results_total, and per-worker
#      shard-duration histograms for both worker IDs.
#   3. The coordinator itself must never simulate: runs_started stays 1
#      (the distributed job) and no in-process campaign runs.
#
# CI runs this as the distributed-smoke job; locally: make distributed-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:8072}"
BASE="http://$ADDR"
SPEC='{"spec":1,"scale":"small","traces":2,"seed":2015,"stride":0,"execution":"distributed"}'
LEASE_TTL="2s"

WORK="$(mktemp -d)"
SERVER_PID=""
RUN_PID=""
cleanup() {
    [ -n "$RUN_PID" ] && kill "$RUN_PID" 2>/dev/null || true
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "distributed-smoke: $*"; }

go build -o "$WORK/reprod" ./cmd/reprod
go build -o "$WORK/determinism" ./cmd/determinism

say "reference hash from cmd/determinism (direct engine run)"
"$WORK/determinism" \
    -scenario uncongested -sched wheel -xtraffic lazy -workers 1 -slices 1 \
    > "$WORK/determinism.out"
REF_HASH="$(head -n1 "$WORK/determinism.out" | cut -d' ' -f1)"
say "reference $REF_HASH"

"$WORK/reprod" serve -addr "$ADDR" -data "$WORK/data" -jobs 1 -lease-ttl "$LEASE_TTL" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then say "FAIL: server did not come up on $ADDR"; exit 1; fi
    sleep 0.2
done

say "submitting distributed campaign (awaits workers)"
"$WORK/reprod" run -coordinator "$BASE" -spec "$SPEC" -out "$WORK/dataset.jsonl" \
    > "$WORK/report.json" 2> "$WORK/run.log" &
RUN_PID=$!

say "worker w1: claims a batch, crashes after one accepted upload"
"$WORK/reprod" worker -coordinator "$BASE" -id w1 -batch 4 -exit-after-results 1 \
    > "$WORK/w1.stats" 2>/dev/null
say "w1 stats: $(cat "$WORK/w1.stats")"

say "letting w1's orphaned leases lapse (TTL $LEASE_TTL)"
sleep 3

say "worker w2: drains the job"
"$WORK/reprod" worker -coordinator "$BASE" -id w2 -batch 4 -exit-when-idle \
    > "$WORK/w2.stats" 2>/dev/null
say "w2 stats: $(cat "$WORK/w2.stats")"

if ! wait "$RUN_PID"; then
    say "FAIL: reprod run did not succeed"
    cat "$WORK/run.log"
    exit 1
fi
RUN_PID=""

GOT_HASH="$(sha256sum "$WORK/dataset.jsonl" | cut -d' ' -f1)"
if [ "$GOT_HASH" != "$REF_HASH" ]; then
    say "FAIL: distributed dataset hash $GOT_HASH != determinism hash $REF_HASH"
    exit 1
fi
say "two-worker dataset (with mid-run crash) matches cmd/determinism: $GOT_HASH"

REPORT_HASH="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["dataset_sha256"])' "$WORK/report.json")"
[ "$REPORT_HASH" = "$REF_HASH" ] \
    || { say "FAIL: run report hash $REPORT_HASH != $REF_HASH"; exit 1; }

say "lease telemetry"
curl -fsS "$BASE/v1/metrics" -o "$WORK/metrics.txt"
SHARDS="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["shards"])' "$WORK/report.json")"
python3 - "$WORK/metrics.txt" "$SHARDS" <<'EOF'
import sys

series = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    series[name] = float(value)
shards = int(sys.argv[2])

def get(name):
    assert name in series, f"missing series {name}"
    return series[name]

# Every shard accepted exactly once, despite the crash.
assert get('repro_shard_results_total{result="accepted"}') == shards, series
# The crash left leases to expire and be re-issued.
assert get('repro_lease_events_total{event="grant"}') > shards, series
assert get('repro_lease_events_total{event="expire"}') >= 1, series
assert get('repro_lease_events_total{event="reissue"}') >= 1, series
# Both workers left shard-duration samples.
assert get('repro_worker_shard_duration_seconds_count{worker="w1"}') >= 1, series
assert get('repro_worker_shard_duration_seconds_count{worker="w2"}') >= 1, series
# The coordinator merged; it did not simulate. The one started "run" is
# the distributed job itself, and the engine saw zero in-process shards.
assert get('repro_jobs_total{event="started"}') == 1, series
assert get('repro_jobs_total{event="done"}') == 1, series
assert "repro_campaign_shard_duration_seconds_count" not in series or \
    series["repro_campaign_shard_duration_seconds_count"] == 0, series
print("distributed-smoke: lease telemetry OK")
EOF

say "OK: crash-tolerant two-worker campaign == cmd/determinism ($REF_HASH); lease expiry/re-issue recorded"
