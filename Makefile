# Single entry point for local development and CI: the workflow in
# .github/workflows/ci.yml invokes exactly these targets, so the two
# cannot drift.

GO ?= go

.PHONY: all build test race bench fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark on the small world,
# exercising the full artefact pipeline (campaign engine, analysis,
# extensions, ablations) without paper-scale cost.
bench:
	REPRO_SCALE=small $(GO) test -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test
