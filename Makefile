# Single entry point for local development and CI: the workflow in
# .github/workflows/ci.yml invokes exactly these targets, so the two
# cannot drift.

GO ?= go

.PHONY: all build test race bench fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark on the small world,
# exercising the full artefact pipeline (campaign engine, analysis,
# extensions, ablations) without paper-scale cost. Also writes
# BENCH_2.json — campaign wall-clock (uncongested + congested-edge) and
# AQM CE-mark throughput — which CI uploads as the perf-trajectory
# artifact.
bench:
	REPRO_SCALE=small $(GO) test -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchreport -o BENCH_2.json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test
