# Single entry point for local development and CI: the workflow in
# .github/workflows/ci.yml invokes exactly these targets, so the two
# cannot drift.

GO ?= go

.PHONY: all build test race bench fmt vet lint determinism perf-gate serve smoke distributed-smoke crash-smoke chaos-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark on the small world,
# exercising the full artefact pipeline (campaign engine, analysis,
# extensions, ablations) without paper-scale cost. Also writes
# BENCH_10.json — campaign wall-clock for all three scenarios under both
# cross-traffic drives (lazy replay vs event-per-phantom-boundary, with
# the phantom/replayed event split) with instrumented twins of the lazy
# rows (full flight-recorder Metrics attached, for the telemetry
# overhead pair) plus worker × slice scaling rows, world
# compile/instantiate fixed costs, scheduler (wheel vs heap, dense and
# sparse kernels) throughput, pooled AQM CE-mark throughput, pooled
# packet-build cost, telemetry write path (all with allocs/op), and
# control-plane rows (cold submit vs direct campaign.Run vs cache hit
# vs the lease/worker protocol with four in-process workers, with and
# without the write-ahead journal — the journal-overhead pair — and the
# straggler pair: the same fan-out with a dead two-shard claimant, with
# straggler speculation on vs off), plus journal-footprint rows
# (segmented-with-compaction vs single-file, same job) — which CI
# uploads as the perf-trajectory artifact.
bench:
	REPRO_SCALE=small $(GO) test -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchreport -o BENCH_10.json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs golangci-lint (errcheck, staticcheck, ineffassign, govet —
# see .golangci.yml) when the binary is available; otherwise it falls
# back to go vet so the target never silently passes without checking
# anything. CI installs golangci-lint, so the full set always runs
# there.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "lint: golangci-lint not found; falling back to '$(GO) vet'"; \
		echo "lint: install it from https://golangci-lint.run/welcome/install/ for the full check"; \
		$(GO) vet ./...; \
	fi

# determinism promotes the parallelism-invariance tests to a pipeline
# check: for every scenario the merged dataset SHA-256 must be
# identical across slices {1,2,8} × workers {1,4,13}, on both the
# timing-wheel and heap schedulers, under both cross-traffic drives
# (lazy catch-up replay and the event-per-boundary oracle).
determinism:
	$(GO) run ./cmd/determinism

# serve runs the campaign-as-a-service control plane (cmd/reprod) in
# the foreground on :8070 with ./reprod-data as the result store; see
# README.md for the curl quickstart.
serve:
	$(GO) run ./cmd/reprod

# smoke drives a real reprod process over HTTP: submit → poll → fetch,
# asserts the served dataset's SHA-256 equals cmd/determinism's hash
# for the same spec, and that resubmission is a pure cache hit (no
# second simulation, per /v1/stats).
smoke:
	./scripts/service_smoke.sh

# distributed-smoke drives the worker protocol with real processes: a
# coordinator plus two reprod worker processes, one of which abandons
# its leases mid-run. The final dataset's SHA-256 must equal
# cmd/determinism's hash, and the lease telemetry must record the
# expiry/re-issue cycle.
distributed-smoke:
	./scripts/distributed_smoke.sh

# crash-smoke kills a real coordinator (exit 137, via the
# crash-after-journal failpoint) in the middle of a two-worker
# campaign, restarts it on the same data directory, and requires the
# drained dataset's SHA-256 to equal cmd/determinism's hash — plus
# non-zero worker-retry and journal-recovery telemetry.
crash-smoke:
	./scripts/crash_smoke.sh

# chaos-smoke runs a distributed campaign with one deliberately wedged
# worker (claims, heartbeats, never executes) and two healthy workers
# behind the deterministic fault-injecting chaosproxy. The job must
# complete via straggler speculation, the wedged worker must end up
# quarantined on /v1/workers, and the dataset's SHA-256 must equal
# cmd/determinism's hash.
chaos-smoke:
	./scripts/chaos_smoke.sh

# perf-gate benchmarks the working tree against PERF_GATE_BASE
# (default origin/main) and fails on >10% campaign wall-clock
# regression or any allocation on the pooled packet-path benchmarks.
perf-gate:
	./scripts/perf_gate.sh

check: fmt vet build test
