// Package repro's root benchmark harness regenerates every table and
// figure of McQuistin & Perkins (IMC 2015) from a paper-scale simulated
// campaign. One benchmark per artefact: the measured body is the
// analysis reduction; the campaign itself runs once as shared setup and
// is amortised across all benchmarks.
//
// Knobs (environment, parsed by campaign.FromEnv):
//
//	REPRO_SCALE=small|paper   world size            (default paper)
//	REPRO_SCENARIO=name       congestion scenario   (default uncongested)
//	REPRO_TRACES=N|paper      traces per vantage    (default 6; "paper" = the full 210-trace plan)
//	REPRO_STRIDE=N            traceroute sampling   (default 3: every 3rd server)
//	REPRO_SEED=N              campaign seed         (default 2015)
//	REPRO_WORKERS=N           parallel shard workers (default GOMAXPROCS)
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Paper-vs-measured numbers for each artefact are printed once per run
// and recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rtp"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// fixture is the shared campaign output.
type fixture struct {
	world      *topology.World
	data       *dataset.Dataset
	pathObs    []traceroute.PathObservation
	congestion []analysis.CEMarkSample
}

var (
	fixOnce sync.Once
	fix     *fixture
)

// benchFixture runs the sharded measurement + traceroute campaign exactly
// once per test binary, via the campaign engine's REPRO_* configuration.
func benchFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		cfg, err := campaign.FromEnv()
		if err != nil {
			b.Fatal(err)
		}
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fix = &fixture{world: res.World, data: res.Dataset, pathObs: res.PathObs, congestion: res.Congestion}
		fmt.Printf("# fixture: %d servers, %d traces, %d hop observations, %d events, %d shards\n",
			len(res.World.Servers), len(res.Dataset.Traces), len(res.PathObs), res.Events, len(res.Shards))
	})
	return fix
}

// printOnce emits an artefact's paper-vs-measured summary a single time.
var printed sync.Map

func printOnce(key, s string) {
	if _, dup := printed.LoadOrStore(key, true); !dup {
		fmt.Print(s)
	}
}

// --- one benchmark per table and figure ----------------------------------

func BenchmarkTable1GeographicDistribution(b *testing.B) {
	f := benchFixture(b)
	addrs := f.world.ServerAddrs()
	b.ResetTimer()
	var t1 analysis.Table1
	for i := 0; i < b.N; i++ {
		t1 = analysis.ComputeTable1(addrs, f.world.Geo)
	}
	b.StopTimer()
	printOnce("table1", fmt.Sprintf(
		"# Table 1 — paper: Africa 22, Asia 190, Australia 68, Europe 1664, N.America 522, S.America 32, Unknown 2, total 2500\n%s\n",
		analysis.RenderTable1(t1)))
}

func BenchmarkFigure1GeoLocations(b *testing.B) {
	f := benchFixture(b)
	addrs := f.world.ServerAddrs()
	b.ResetTimer()
	var f1 analysis.Figure1
	for i := 0; i < b.N; i++ {
		f1 = analysis.ComputeFigure1(addrs, f.world.Geo)
	}
	b.StopTimer()
	printOnce("figure1", analysis.RenderFigure1(f1)+"\n")
}

func BenchmarkFigure2aUDPReachability(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var f2 analysis.Figure2
	for i := 0; i < b.N; i++ {
		f2 = analysis.ComputeFigure2a(f.data)
	}
	b.StopTimer()
	printOnce("figure2a", fmt.Sprintf(
		"# Figure 2a — paper: average 98.97%%, always above 90%%, avg 2253 not-ECT-reachable\n%s\n",
		analysis.RenderFigure2(f2, fmt.Sprintf(
			"Figure 2a (measured): avg %.2f%%, min %.2f%%, avg not-ECT reachable %.0f",
			f2.Average, f2.Minimum, f2.AvgUDPReachable))))
}

func BenchmarkFigure2bUDPReachabilityConverse(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var f2 analysis.Figure2
	for i := 0; i < b.N; i++ {
		f2 = analysis.ComputeFigure2b(f.data)
	}
	b.StopTimer()
	printOnce("figure2b", fmt.Sprintf(
		"# Figure 2b — paper: average 99.45%%\n%s\n",
		analysis.RenderFigure2(f2, fmt.Sprintf("Figure 2b (measured): avg %.2f%%", f2.Average))))
}

func BenchmarkFigure3aDifferentialReachability(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var f3 analysis.Figure3
	for i := 0; i < b.N; i++ {
		f3 = analysis.ComputeFigure3a(f.data)
	}
	b.StopTimer()
	printOnce("figure3a", fmt.Sprintf(
		"# Figure 3a — paper: 9–14 servers >50%% differential depending on location, same set everywhere\n%s\n",
		analysis.RenderFigure3(f3, "Figure 3a (measured)")))
}

func BenchmarkFigure3bDifferentialConverse(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var f3 analysis.Figure3
	for i := 0; i < b.N; i++ {
		f3 = analysis.ComputeFigure3b(f.data)
	}
	b.StopTimer()
	printOnce("figure3b", fmt.Sprintf(
		"# Figure 3b — paper: at most 3 servers >50%%; one everywhere, two only from EC2\n%s\n",
		analysis.RenderFigure3(f3, "Figure 3b (measured)")))
}

func BenchmarkFigure4TracerouteECN(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var f4 analysis.Figure4
	for i := 0; i < b.N; i++ {
		f4 = analysis.ComputeFigure4(f.pathObs, f.world.ASN)
	}
	b.StopTimer()
	printOnce("figure4", fmt.Sprintf(
		"# Figure 4 — paper: 155439 hops, 154421 pass ECT(0) (99.3%%), strips at 1143 hops (125 sometimes), 59.1%% of strip locations at AS boundaries, 1400 ASes, no CE\n%s\n",
		analysis.RenderFigure4(f4)))
}

func BenchmarkFigure5TCPECN(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var f5 analysis.Figure5
	for i := 0; i < b.N; i++ {
		f5 = analysis.ComputeFigure5(f.data)
	}
	b.StopTimer()
	printOnce("figure5", fmt.Sprintf(
		"# Figure 5 — paper: avg 1334 reachable via TCP, 1095 negotiate ECN (82.0%%)\n%s\n",
		analysis.RenderFigure5(f5)))
}

func BenchmarkFigure6ECNTrend(b *testing.B) {
	f := benchFixture(b)
	f5 := analysis.ComputeFigure5(f.data)
	b.ResetTimer()
	var f6 analysis.Figure6
	for i := 0; i < b.N; i++ {
		f6 = analysis.ComputeFigure6(f5)
	}
	b.StopTimer()
	printOnce("figure6", fmt.Sprintf(
		"# Figure 6 — paper: rising series Medina→Langley→Bauer→Kühlewind→Trammell→82.0%% (2015)\n%s\n",
		analysis.RenderFigure6(f6)))
}

func BenchmarkTable2UDPTCPCorrelation(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var t2 analysis.Table2
	for i := 0; i < b.N; i++ {
		t2 = analysis.ComputeTable2(f.data)
	}
	b.StopTimer()
	printOnce("table2", fmt.Sprintf(
		"# Table 2 — paper: Perkins 8/3, McQuistin 160/20, UGla wired 10/2, w'less 43/4, EC2 10–16/2–5; weak correlation\n%s\n",
		analysis.RenderTable2(t2)))
}

// BenchmarkProseStatistics covers the §4.1 narrative numbers: overall
// not-ECT reachability, the batch-1 vs batch-2 churn gap, and the
// per-vantage spread (worst: the congested home; noisiest: wireless).
func BenchmarkProseStatistics(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	var p analysis.Prose
	for i := 0; i < b.N; i++ {
		p = analysis.ComputeProse(f.data)
	}
	b.StopTimer()
	printOnce("prose", fmt.Sprintf(
		"# §4.1 prose — paper: avg 2253 reachable; early batch above late; McQuistin home worst; wireless noisiest\n%s\n",
		analysis.RenderProse(p)))
}

// --- end-to-end and ablation benchmarks -----------------------------------

// BenchmarkCampaignSingleTrace measures a full four-measurement trace
// over the entire pool (the paper's unit of data collection).
func BenchmarkCampaignSingleTrace(b *testing.B) {
	f := benchFixture(b)
	v := f.world.Vantages[0]
	servers := f.world.ServerAddrs()
	sim := f.world.Sim
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.world.ApplyTraceConditions(v, topology.Batch1, sim.RNG())
		done := false
		core.RunTrace(v, servers, topology.Batch1, i, func(dataset.Trace) { done = true })
		sim.Run()
		if !done {
			b.Fatal("trace did not complete")
		}
	}
}

// BenchmarkTracerouteOnePath measures a single ECT(0) traceroute.
func BenchmarkTracerouteOnePath(b *testing.B) {
	f := benchFixture(b)
	v := f.world.Vantages[len(f.world.Vantages)-1]
	v.Host.Uplink().SetLossBoth(0)
	mux := traceroute.NewMux(v.Host)
	target := f.world.ServerAddrs()[0]
	sim := f.world.Sim
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		mux.Run(target, traceroute.Config{ProbesPerHop: 1}, func(traceroute.Result) { done = true })
		sim.Run()
		if !done {
			b.Fatal("trace did not complete")
		}
	}
}

// BenchmarkExtensionECNUsability runs the Kühlewind-style TCP usability
// test the paper cites but does not perform: CE-marked segments on
// negotiated connections, checking for the ECE echo. Kühlewind et al.
// measured ≈90% of negotiating hosts usable; the world plants 10%
// broken-ECE servers.
func BenchmarkExtensionECNUsability(b *testing.B) {
	f := benchFixture(b)
	v := f.world.Vantages[0]
	v.Host.Uplink().SetLossBoth(0)
	servers := f.world.ServerAddrs()
	sim := f.world.Sim
	b.ResetTimer()
	var res core.ECNUsabilityResult
	for i := 0; i < b.N; i++ {
		core.RunECNUsability(v, servers, 10, func(r core.ECNUsabilityResult) { res = r })
		sim.Run()
	}
	b.StopTimer()
	printOnce("ext-usability", fmt.Sprintf(
		"# Extension (Kühlewind usability) — literature: ≈90%% of negotiating hosts echo ECE\n"+
			"ECN usability: %d negotiated, %d usable (%.1f%%)\n\n",
		res.Negotiated, res.Usable, res.Rate()))
}

// BenchmarkExtensionArrivalCensus answers the question §4.2 leaves open
// ("whether marked packets reach their destination with the ECT(0) mark
// intact") using the simulator's destination-side ground truth.
func BenchmarkExtensionArrivalCensus(b *testing.B) {
	f := benchFixture(b)
	v := f.world.Vantages[len(f.world.Vantages)-1]
	v.Host.Uplink().SetLossBoth(0)
	sim := f.world.Sim
	b.ResetTimer()
	var census core.ArrivalCensus
	for i := 0; i < b.N; i++ {
		core.RunArrivalCensus(f.world, v, func(c core.ArrivalCensus) { census = c })
		sim.Run()
	}
	b.StopTimer()
	total := census.ArrivedECT0 + census.ArrivedBleached + census.ArrivedCE
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(census.ArrivedECT0) / float64(total)
	}
	printOnce("ext-census", fmt.Sprintf(
		"# Extension (destination arrival census) — paper could not observe this\n"+
			"arrivals: %d intact ECT(0) (%.2f%%), %d bleached, %d CE, %d never arrived\n\n",
		census.ArrivedECT0, pct, census.ArrivedBleached, census.ArrivedCE, census.NoArrival))
}

// BenchmarkExtensionECT1Sweep probes with ECT(1) instead of ECT(0); the
// paper chose ECT(0) to match TCP practice and left ECT(1) untested.
func BenchmarkExtensionECT1Sweep(b *testing.B) {
	f := benchFixture(b)
	v := f.world.Vantages[2]
	v.Host.Uplink().SetLossBoth(0)
	servers := f.world.ServerAddrs()
	sim := f.world.Sim
	b.ResetTimer()
	var res core.ECT1SweepResult
	for i := 0; i < b.N; i++ {
		core.RunECT1Sweep(v, servers, func(r core.ECT1SweepResult) { res = r })
		sim.Run()
	}
	b.StopTimer()
	printOnce("ext-ect1", fmt.Sprintf(
		"# Extension (ECT(1) sweep) — middleboxes here treat both ECT codepoints alike\n"+
			"reachable: ECT(0) %d, ECT(1) %d, per-server disagreements %d\n\n",
		res.ReachableECT0, res.ReachableECT1, res.Disagree))
}

// BenchmarkExtensionMediaECNBenefit quantifies the paper's closing
// question ("whether the use of ECN with UDP offers any benefit has not
// been determined"): the same congested hop as CE-marking versus loss,
// under an adaptive RTP session.
func BenchmarkExtensionMediaECNBenefit(b *testing.B) {
	run := func(useECN bool) (delivered, sent int, ce int) {
		sim := netsim.NewSim(77)
		n := netsim.NewNetwork(sim)
		r1 := n.AddRouter("r1", packetAddr(10, 255, 0, 1), 64500)
		r2 := n.AddRouter("r2", packetAddr(10, 255, 1, 1), 64501)
		n.Connect(r1, r2, 10*timeMillisecond, 0)
		sh, _ := n.AddHost("s", packetAddr(10, 0, 0, 1))
		rh, _ := n.AddHost("r", packetAddr(10, 0, 1, 1))
		n.Attach(sh, r1, 2*timeMillisecond, 0)
		link, _ := n.Attach(rh, r2, 2*timeMillisecond, 0)
		if err := n.ComputeRoutes(); err != nil {
			b.Fatal(err)
		}
		if useECN {
			r2.AddPolicy(&middlebox.CEMarker{Probability: 0.08, RNG: sim.RNG()})
		} else {
			link.SetLoss(r2, 0.08)
		}
		recv, _ := rtp.NewReceiver(rh, 5004, 42)
		snd, _ := rtp.NewSender(sh, rh.Addr(), 5004, rtp.SenderConfig{SSRC: 42, UseECN: useECN})
		var stats rtp.SenderStats
		snd.Start(20*timeSecond, func(s rtp.SenderStats) { stats = s })
		sim.Run()
		rs := recv.Stats()
		return rs.PacketsReceived, stats.PacketsSent, rs.CE
	}
	b.ResetTimer()
	var dECN, sECN, ce, dLoss, sLoss int
	for i := 0; i < b.N; i++ {
		dECN, sECN, ce = run(true)
		dLoss, sLoss, _ = run(false)
	}
	b.StopTimer()
	printOnce("ext-media", fmt.Sprintf(
		"# Extension (media benefit) — paper: benefit undetermined; measured here:\n"+
			"with ECN+AQM: %d/%d delivered (%.1f%% loss), %d CE marks absorbed by rate adaptation\n"+
			"without ECN:  %d/%d delivered (%.1f%% loss) under the same congestion\n\n",
		dECN, sECN, 100*float64(sECN-dECN)/float64(sECN), ce,
		dLoss, sLoss, 100*float64(sLoss-dLoss)/float64(sLoss)))
}

// BenchmarkCEMarkReport reduces a congested-edge campaign to the
// CE-mark report: the verbose-mode CE-ratio estimator at every vantage
// against the bottleneck queues' marking ground truth. The shared
// fixture carries congestion samples only when REPRO_SCENARIO selects a
// congested scenario, so this benchmark runs its own small
// congested-edge campaign (one home vantage, one trace) when it must.
func BenchmarkCEMarkReport(b *testing.B) {
	f := benchFixture(b)
	samples := f.congestion
	if len(samples) == 0 {
		res, err := campaign.Run(campaign.Config{
			Scale:    "small",
			Scenario: campaign.ScenarioCongestedEdge,
			TracePlan: map[string]int{
				"Perkins home": 1,
			},
			Seed: 2015,
		})
		if err != nil {
			b.Fatal(err)
		}
		samples = res.Congestion
	}
	b.ResetTimer()
	var rep analysis.CEMarkReport
	for i := 0; i < b.N; i++ {
		rep = analysis.ComputeCEMarkReport(samples)
	}
	b.StopTimer()
	printOnce("cemark", fmt.Sprintf(
		"# CE-mark report — paper: \"we see no evidence of ... ECN CE\" (no AQM on path);\n"+
			"# congested-edge scenario makes CE happen and checks the verbose-mode estimator:\n%s\n",
		analysis.RenderCEMarkReport(rep)))
}

// small aliases keep the media benchmark readable without extra imports.
func packetAddr(a, b, c, d byte) packet.Addr { return packet.AddrFrom4(a, b, c, d) }

const (
	timeMillisecond = time.Millisecond
	timeSecond      = time.Second
)

// BenchmarkAblationNoMiddleboxes reruns a one-vantage campaign on a
// world with every ECN middlebox removed: ECT(0) reachability converges
// on not-ECT reachability, isolating the middlebox population as the
// cause of the Figure 2a gap (DESIGN.md §6 calibration check).
func BenchmarkAblationNoMiddleboxes(b *testing.B) {
	cfg := topology.SmallConfig()
	cfg.ECTUDPFirewalledServers = 0
	cfg.NotECTFirewalledServers = 0
	cfg.SourceScopedNotECTServers = 0
	cfg.SourceScopedECTServers = 0
	cfg.BleachedBorderStubs = 0
	cfg.BleachedInteriorStubs = 0
	cfg.SometimesBleachedStubs = 0
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		sim := netsim.NewSim(99)
		w, err := topology.Build(sim, cfg)
		if err != nil {
			b.Fatal(err)
		}
		c := core.NewCampaign(w, core.CampaignConfig{
			TracesPerVantage: map[string]int{"EC2 Ireland": 2},
		})
		var d *dataset.Dataset
		c.Run(func(got *dataset.Dataset) { d = got })
		sim.Run()
		avg = analysis.ComputeFigure2a(d).Average
	}
	b.StopTimer()
	printOnce("ablation-nomb", fmt.Sprintf(
		"# Ablation (no middleboxes): Figure 2a average = %.2f%% (expect ≈100%%)\n", avg))
}

// BenchmarkAblationHeavyBleaching scales the bleacher population up 4×
// to show the Figure 4 preserved fraction responding to placement
// density (the design-choice knob DESIGN.md calls out).
func BenchmarkAblationHeavyBleaching(b *testing.B) {
	cfg := topology.SmallConfig()
	cfg.BleachedBorderStubs *= 4
	cfg.BleachedInteriorStubs *= 4
	b.ResetTimer()
	var preserved float64
	for i := 0; i < b.N; i++ {
		sim := netsim.NewSim(7)
		w, err := topology.Build(sim, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var obs []traceroute.PathObservation
		core.RunTracerouteCampaign(w, core.TracerouteCampaignConfig{
			Vantages: []string{"EC2 Tokyo"},
			Config:   traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
		}, func(o []traceroute.PathObservation) { obs = o })
		sim.Run()
		f4 := analysis.ComputeFigure4(obs, w.ASN)
		preserved = 100 * float64(f4.PreservedObservations) / float64(f4.RespondedObservations)
	}
	b.StopTimer()
	printOnce("ablation-bleach", fmt.Sprintf(
		"# Ablation (4x bleachers): preserved fraction = %.2f%% (baseline ≈99%%)\n", preserved))
}
