// Package repro reproduces McQuistin & Perkins, "Is Explicit Congestion
// Notification usable with UDP?" (ACM IMC 2015), as a self-contained Go
// system: a deterministic packet-level Internet simulator, the paper's
// four-measurement prober, the traceroute-quotation transparency
// analysis, and the full figure/table pipeline.
//
// The root package holds only the benchmark harness (bench_test.go),
// which regenerates every artefact of the paper's evaluation via the
// sharded parallel campaign engine in internal/campaign; the library
// lives under internal/ and the runnable tools under cmd/ and examples/.
// Start with README.md, DESIGN.md and EXPERIMENTS.md.
package repro
